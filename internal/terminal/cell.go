// Package terminal implements the character-cell terminal emulator at the
// heart of Mosh (paper §3.1): a parser and interpreter for the subset of
// the ISO/IEC 6429 / ECMA-48 control language used by xterm and friends,
// a framebuffer holding the screen state, and a renderer that produces the
// minimal byte string transforming one screen state into another — the
// "logical diff" SSP ships from server to client.
//
// # Memory model
//
// The cell is the data structure every layer above iterates over millions
// of times per second, so it is engineered as a compact pointer-free value
// type:
//
//   - Cell contents are a packed uint32: blank, an inline single rune
//     (ASCII, CJK, emoji — the overwhelming majority), or an index into a
//     process-wide append-only grapheme intern table holding multi-rune
//     combining clusters (see intern.go). Printing never allocates in
//     steady state, cell equality is an integer compare, and rows contain
//     no pointers for the garbage collector to trace.
//   - Framebuffer.Clone is copy-on-write: it shares *Row pointers and
//     marks them shared. Rows are immutable once shared — every mutation
//     path first materializes a private copy (writableRow) — so a snapshot
//     costs O(height), not O(width×height). CloneInto additionally reuses
//     a retired snapshot's storage, making the sender's steady-state
//     snapshot fully allocation-free.
//   - Scrollback is structurally shared: clones reference the same
//     append-only history arena through (offset, length) windows, so a
//     snapshot carries deep scrollback in O(1) instead of copying the
//     up-to-1000-entry pointer slice (see scrollHistory in framebuffer.go).
//
// # Snapshot and diff performance
//
// The SSP sender snapshots the screen on every send and diffs the live
// screen against a retained snapshot on every tick, so both operations are
// engineered off the row-generation numbers Framebuffer maintains:
//
//   - FrameWriter renders diffs with reusable scratch and appends into a
//     caller-owned buffer; with a long-lived writer (one per sender) the
//     steady-state diff path performs zero heap allocations. NewFrame is
//     the convenience wrapper that allocates per call.
//   - Scroll detection and unchanged-row skipping compare generations
//     (and row pointers), never cells, except for rows that actually
//     changed.
package terminal

import (
	"strconv"
	"unicode/utf8"
)

// Color encodes a cell color: the zero value is the terminal default;
// values 1..256 are the 256-color palette entries 0..255; RGB truecolor
// sets the top bit.
type Color uint32

const (
	// ColorDefault is the terminal's default foreground or background.
	ColorDefault Color = 0
	rgbBit             = Color(1) << 31
)

// PaletteColor returns the indexed palette color n (0..255).
func PaletteColor(n uint8) Color { return Color(n) + 1 }

// RGBColor returns a 24-bit truecolor value.
func RGBColor(r, g, b uint8) Color {
	return rgbBit | Color(r)<<16 | Color(g)<<8 | Color(b)
}

// IsRGB reports whether the color is a truecolor value.
func (c Color) IsRGB() bool { return c&rgbBit != 0 }

// Palette returns the palette index for an indexed color.
func (c Color) Palette() uint8 { return uint8(c - 1) }

// RGB returns the components of a truecolor value.
func (c Color) RGB() (r, g, b uint8) {
	return uint8(c >> 16), uint8(c >> 8), uint8(c)
}

// Renditions is the graphic state applied to printed characters (SGR).
type Renditions struct {
	Fg, Bg    Color
	Bold      bool
	Faint     bool
	Italic    bool
	Underline bool
	Blink     bool
	Inverse   bool
	Invisible bool
}

// SGRReset is the default rendition.
var SGRReset = Renditions{}

// ANSIString returns the escape sequence that establishes r starting from
// the default rendition (always beginning with a reset).
func (r Renditions) ANSIString() string {
	return string(r.appendANSI(nil))
}

// appendANSI appends the same escape sequence ANSIString returns to buf.
// It is the allocation-free emission path the frame renderer uses.
func (r Renditions) appendANSI(buf []byte) []byte {
	buf = append(buf, "\x1b[0"...)
	if r.Bold {
		buf = append(buf, ";1"...)
	}
	if r.Faint {
		buf = append(buf, ";2"...)
	}
	if r.Italic {
		buf = append(buf, ";3"...)
	}
	if r.Underline {
		buf = append(buf, ";4"...)
	}
	if r.Blink {
		buf = append(buf, ";5"...)
	}
	if r.Inverse {
		buf = append(buf, ";7"...)
	}
	if r.Invisible {
		buf = append(buf, ";8"...)
	}
	buf = appendColor(buf, 30, r.Fg)
	buf = appendColor(buf, 40, r.Bg)
	return append(buf, 'm')
}

func appendColor(buf []byte, base int, c Color) []byte {
	switch {
	case c == ColorDefault:
	case c.IsRGB():
		cr, cg, cb := c.RGB()
		buf = append(buf, ';')
		buf = strconv.AppendUint(buf, uint64(base+8), 10)
		buf = append(buf, ";2;"...)
		buf = strconv.AppendUint(buf, uint64(cr), 10)
		buf = append(buf, ';')
		buf = strconv.AppendUint(buf, uint64(cg), 10)
		buf = append(buf, ';')
		buf = strconv.AppendUint(buf, uint64(cb), 10)
	case c.Palette() < 8:
		buf = append(buf, ';')
		buf = strconv.AppendUint(buf, uint64(base+int(c.Palette())), 10)
	default:
		buf = append(buf, ';')
		buf = strconv.AppendUint(buf, uint64(base+8), 10)
		buf = append(buf, ";5;"...)
		buf = strconv.AppendUint(buf, uint64(c.Palette()), 10)
	}
	return buf
}

// Cell is one character cell of the screen: a compact, pointer-free value
// type (the diff, snapshot and prediction layers compare and copy cells
// millions of times per second).
type Cell struct {
	// content is the packed grapheme word: blank, an inline rune, or a
	// grapheme intern table index (see intern.go). Mutate it only through
	// SetRune/SetContents (or the emulator's print path) so inline/interned
	// canonicalization — which cell equality relies on — is preserved.
	content uint32
	// Rend is the graphic rendition the cell was printed with.
	Rend Renditions
	// Wide marks the leading half of a double-width character; the cell
	// to its right must be a blank continuation.
	Wide bool
	// wrap marks that the line soft-wrapped after this (last-column)
	// cell; renderers and predictors use it to reflow correctly.
	wrap bool
}

// packedSpace is the content word of an explicitly printed space, which
// renders identically to a blank cell.
const packedSpace = uint32(' ')

// Reset clears the cell to a blank with the given background.
func (c *Cell) Reset(bg Renditions) {
	*c = Cell{Rend: Renditions{Bg: bg.Bg}}
}

// ContentsString returns the cell's grapheme: a base character plus any
// combining characters, UTF-8 encoded. Empty means blank. (This is the
// read side of the old exported Contents field.)
func (c *Cell) ContentsString() string { return contentString(c.content) }

// SetContents replaces the cell's grapheme with an arbitrary string,
// interning multi-rune clusters. Empty means blank.
func (c *Cell) SetContents(s string) { c.content = internContents(s) }

// SetRune replaces the cell's grapheme with a single rune — the
// allocation-free fast path for every plain printed character.
func (c *Cell) SetRune(r rune) { c.content = packRune(r) }

// ContentsEmpty reports whether the cell is blank (the old
// Contents == "" test), without materializing a string.
func (c *Cell) ContentsEmpty() bool { return c.content == 0 }

// IsBlank reports whether the cell shows nothing (empty or space with no
// distinguishing rendition).
func (c *Cell) IsBlank() bool {
	return (c.content == 0 || c.content == packedSpace) && !c.Wide &&
		c.Rend == Renditions{Bg: c.Rend.Bg} && c.Rend.Bg == ColorDefault
}

// Equal reports whether two cells render identically — one integer
// compare per field, thanks to canonical interning. The soft-wrap flag
// is deliberately excluded: it is invisible, and screen diffs (which use
// absolute cursor positioning) cannot reproduce it on the remote side.
func (c *Cell) Equal(o *Cell) bool {
	cc, oc := c.content, o.content
	if cc == packedSpace {
		cc = 0
	}
	if oc == packedSpace {
		oc = 0
	}
	return cc == oc && c.Rend == o.Rend && c.Wide == o.Wide
}

// Wrapped reports whether the line soft-wrapped after this cell.
func (c *Cell) Wrapped() bool { return c.wrap }

// String renders the cell's visible contents (space when blank).
func (c *Cell) String() string {
	if c.content == 0 {
		return " "
	}
	return contentString(c.content)
}

// appendContents appends the cell's visible bytes to buf (space when
// blank): the renderer's zero-allocation emission path.
func (c *Cell) appendContents(buf []byte) []byte {
	return appendContent(buf, c.content)
}

// leadRune returns the cell's base character (0 when blank); REP and the
// prediction engine use it.
func (c *Cell) leadRune() rune {
	switch {
	case c.content == 0:
		return 0
	case c.content&graphemeBit == 0:
		return rune(c.content)
	default:
		r, _ := utf8.DecodeRuneInString(graphemes.lookup(c.content))
		return r
	}
}

// RuneWidth reports the number of terminal columns r occupies: 0 for
// combining marks, 2 for East Asian wide characters, 1 otherwise. The
// table covers the ranges interactive programs actually emit.
func RuneWidth(r rune) int {
	switch {
	case r == 0:
		return 0
	case r < 32 || (r >= 0x7f && r < 0xa0):
		return 0 // control; never printed into cells
	case isCombining(r):
		return 0
	case isWide(r):
		return 2
	default:
		return 1
	}
}

func isCombining(r rune) bool {
	return (r >= 0x0300 && r <= 0x036f) || // combining diacritical marks
		(r >= 0x1ab0 && r <= 0x1aff) ||
		(r >= 0x1dc0 && r <= 0x1dff) ||
		(r >= 0x20d0 && r <= 0x20ff) ||
		(r >= 0xfe00 && r <= 0xfe0f) || // variation selectors (VS16 widens its cell)
		(r >= 0xfe20 && r <= 0xfe2f) ||
		(r >= 0xe0100 && r <= 0xe01ef) || // variation selectors supplement
		r == 0x200d // zero-width joiner
}

// vs16 is VARIATION SELECTOR-16: it requests emoji presentation, which
// renders at double width even when the base character alone is narrow
// (for example U+2708 AIRPLANE vs U+2708 U+FE0F ✈️).
const vs16 = 0xfe0f

// isPictographic approximates Unicode's Extended_Pictographic property
// over the ranges interactive programs actually emit. Per UAX #29 GB11 a
// ZWJ extends a grapheme cluster only when followed by a pictographic
// rune — ZWJ between ordinary letters (Arabic shaping, Indic half-forms)
// must NOT merge cells.
func isPictographic(r rune) bool {
	switch r {
	case 0x00a9, 0x00ae, 0x203c, 0x2049, 0x2122, 0x2139,
		0x24c2, 0x3030, 0x303d, 0x3297, 0x3299:
		return true
	}
	return (r >= 0x2190 && r <= 0x21ff) || // arrows
		(r >= 0x2300 && r <= 0x23ff) || // misc technical (⌚ ⏰ …)
		(r >= 0x25a0 && r <= 0x27bf) || // geometric, misc symbols, dingbats
		(r >= 0x2934 && r <= 0x2935) ||
		(r >= 0x2b00 && r <= 0x2b5f) || // ⬛ ⭐ …
		(r >= 0x1f000 && r <= 0x1faff) // emoji planes
}

// endsWithZWJ reports whether a packed content word's cluster ends with
// U+200D (zero-width joiner) — the signal that the next printed rune
// joins this cell's emoji sequence instead of starting a new cell.
func endsWithZWJ(content uint32) bool {
	switch {
	case content == 0:
		return false
	case content&graphemeBit == 0:
		return content == 0x200d
	default:
		s := graphemes.lookup(content)
		return len(s) >= 3 && s[len(s)-3:] == "\u200d"
	}
}

func isWide(r rune) bool {
	return (r >= 0x1100 && r <= 0x115f) || // Hangul Jamo
		(r >= 0x2e80 && r <= 0x303e) || // CJK radicals, punctuation
		(r >= 0x3041 && r <= 0x33ff) || // Hiragana..CJK compat
		(r >= 0x3400 && r <= 0x4dbf) ||
		(r >= 0x4e00 && r <= 0x9fff) || // CJK unified
		(r >= 0xa000 && r <= 0xa4cf) ||
		(r >= 0xac00 && r <= 0xd7a3) || // Hangul syllables
		(r >= 0xf900 && r <= 0xfaff) ||
		(r >= 0xfe30 && r <= 0xfe4f) ||
		(r >= 0xff00 && r <= 0xff60) || // fullwidth forms
		(r >= 0xffe0 && r <= 0xffe6) ||
		(r >= 0x1f300 && r <= 0x1f9ff) || // emoji
		(r >= 0x20000 && r <= 0x3fffd)
}
