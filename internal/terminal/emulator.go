package terminal

import (
	"bytes"
	"fmt"
)

// Emulator interprets the host application's output byte stream onto a
// Framebuffer. The server runs one as the authoritative screen; the client
// runs another to apply SSP diffs; and the prediction engine consults the
// same cell semantics to guess echo effects.
type Emulator struct {
	fb     *Framebuffer
	parser Parser
	// answerback accumulates terminal→host reports (cursor position,
	// device attributes) for the server to feed back to the application.
	answerback bytes.Buffer
	// joinArmed marks an uninterrupted print stream: set by every printed
	// rune, cleared by any control or escape dispatch. Emoji ZWJ joining
	// and VS16 widening apply only within such a stream — a cell that
	// merely *ends* with a dangling joiner must not swallow a rune the
	// application prints after repositioning the cursor (grapheme
	// clusters break on cursor motion).
	joinArmed bool
}

// NewEmulator returns an emulator with a blank w×h screen.
func NewEmulator(w, h int) *Emulator {
	return &Emulator{fb: NewFramebuffer(w, h)}
}

// NewEmulatorWithFramebuffer returns an emulator interpreting onto an
// existing screen state, without allocating a blank one first. State-sync
// clones use it so a snapshot costs no full-screen allocation.
func NewEmulatorWithFramebuffer(fb *Framebuffer) *Emulator {
	return &Emulator{fb: fb}
}

// Framebuffer exposes the live screen state.
func (e *Emulator) Framebuffer() *Framebuffer { return e.fb }

// SetFramebuffer replaces the live screen state (used when applying a
// resize that arrives via state sync). Like any cursor disruption it
// breaks the print stream for emoji joining.
func (e *Emulator) SetFramebuffer(fb *Framebuffer) {
	e.fb = fb
	e.joinArmed = false
}

// Write interprets host output, implementing io.Writer. It never fails;
// unknown sequences are ignored like real terminals do.
func (e *Emulator) Write(data []byte) (int, error) {
	e.parser.Feed(data, e)
	return len(data), nil
}

// WriteString interprets host output given as a string.
func (e *Emulator) WriteString(s string) { e.Write([]byte(s)) }

// Resize changes the screen dimensions (user resized their window). The
// cursor may be clamped, so the print stream is broken for emoji joining.
func (e *Emulator) Resize(w, h int) {
	e.fb.Resize(w, h)
	e.joinArmed = false
}

// TakeAnswerback drains pending terminal→host responses.
func (e *Emulator) TakeAnswerback() []byte {
	if e.answerback.Len() == 0 {
		return nil
	}
	out := bytes.Clone(e.answerback.Bytes())
	e.answerback.Reset()
	return out
}

// --- dispatcher implementation ---

func (e *Emulator) print(r rune) {
	fb := e.fb
	ds := &fb.DS
	width := RuneWidth(r)
	joinable := e.joinArmed
	e.joinArmed = true

	if width == 0 {
		// Combining character: attach to the previously printed cell. The
		// append goes through the grapheme intern table's combine cache, so
		// the steady state allocates nothing.
		row, col := e.prevGraphicCell()
		if !fb.Peek(row, col).ContentsEmpty() {
			c := fb.Cell(row, col)
			c.content = graphemes.appendRune(c.content, r)
			fb.writableRow(row).touch()
			// VS16 requests emoji presentation: the cell renders at double
			// width even when its base character alone is narrow (✈ vs ✈️).
			// Only emoji-capable bases widen, and only in an uninterrupted
			// print stream — a stray selector on a plain letter, or one
			// arriving after cursor motion, is zero-width noise in every
			// wcwidth implementation, and widening would desync column
			// positions with the application's layout.
			if r == vs16 && joinable && !c.Wide && isPictographic(c.leadRune()) {
				e.widenCell(row, col)
			}
		}
		return
	}

	// A grapheme whose cluster ends in ZWJ is awaiting a joiner: a
	// pictographic rune printed IMMEDIATELY after it belongs to that
	// cell's emoji sequence (UAX #29 GB11), not to a new cell, and the
	// joined cell takes the width of its widest member (👩 + ZWJ + 💻 is
	// one two-column cell, not two). GB11 requires pictographic runes on
	// BOTH sides of the joiner — letter+ZWJ (Arabic shaping, Indic
	// half-forms) followed by an emoji is two cells — and clusters break
	// on cursor motion, so a stale dangling joiner on the screen never
	// swallows a rune printed after the application repositions.
	if row, col := e.prevGraphicCell(); joinable && isPictographic(r) &&
		endsWithZWJ(fb.Peek(row, col).content) && isPictographic(fb.Peek(row, col).leadRune()) {
		c := fb.Cell(row, col)
		c.content = graphemes.appendRune(c.content, r)
		fb.writableRow(row).touch()
		if width == 2 && !c.Wide {
			e.widenCell(row, col)
		}
		return
	}

	// Deferred autowrap.
	if ds.NextPrintWraps && ds.AutoWrapMode {
		wr := fb.writableRow(ds.CursorRow)
		wr.Cells[fb.W-1].wrap = true
		wr.touch()
		ds.CursorCol = 0
		ds.NextPrintWraps = false
		e.lineFeed()
	}

	// A wide character that cannot fit in the last column wraps early.
	if width == 2 && ds.CursorCol == fb.W-1 {
		if ds.AutoWrapMode {
			wr := fb.writableRow(ds.CursorRow)
			wr.Cells[fb.W-1].wrap = true
			wr.touch()
			ds.CursorCol = 0
			e.lineFeed()
		} else {
			ds.CursorCol = fb.W - 2
			if ds.CursorCol < 0 {
				ds.CursorCol = 0
			}
		}
	}

	if ds.InsertMode {
		fb.InsertCells(width)
	}

	row, col := ds.CursorRow, ds.CursorCol
	// Overwriting the continuation half of a wide character destroys the
	// leader too.
	if col > 0 && fb.Peek(row, col-1).Wide {
		lead := fb.Cell(row, col-1)
		lead.Reset(lead.Rend)
	}
	c := fb.Cell(row, col)
	c.SetRune(r)
	c.Rend = ds.Rend
	c.Wide = width == 2
	c.wrap = false
	if width == 2 && col+1 < fb.W {
		fb.Cell(row, col+1).Reset(ds.Rend)
	}
	// One print perturbs at most cols col-1..col+1; normalizing that
	// window (instead of the whole row, per character) keeps bulk text
	// output linear in the row width.
	fb.normalizeWideRange(row, col-2, col+3)
	fb.writableRow(row).touch()

	if col+width >= fb.W {
		ds.CursorCol = fb.W - 1
		ds.NextPrintWraps = true
	} else {
		ds.CursorCol = col + width
		ds.NextPrintWraps = false
	}
}

// prevGraphicCell locates the cell holding the most recently printed
// grapheme — the attachment target for combining characters and ZWJ
// joins: the cell left of the cursor (or under it while an autowrap is
// pending), stepping over a wide character's continuation half.
func (e *Emulator) prevGraphicCell() (row, col int) {
	fb := e.fb
	ds := &fb.DS
	row, col = ds.CursorRow, ds.CursorCol
	if !ds.NextPrintWraps && col > 0 {
		col--
	}
	if col > 0 && fb.Peek(row, col).ContentsEmpty() && fb.Peek(row, col-1).Wide {
		col--
	}
	return row, col
}

// widenCell grows a single-width cell into a double-width one after its
// grapheme gained emoji presentation (VS16) or a wide ZWJ-joined member:
// the continuation half is blanked and the cursor, when it sat
// immediately after the cell, moves past the continuation exactly as if
// the cell had been printed wide. A cell in the last column stays narrow
// — there is no room for a continuation, and the wide-cell invariant
// (normalizeWide) would otherwise destroy it.
func (e *Emulator) widenCell(row, col int) {
	fb := e.fb
	if col >= fb.W-1 {
		return
	}
	c := fb.Cell(row, col)
	c.Wide = true
	fb.Cell(row, col+1).Reset(c.Rend)
	fb.normalizeWideRange(row, col-2, col+3)
	fb.writableRow(row).touch()
	ds := &fb.DS
	if ds.CursorRow == row && ds.CursorCol == col+1 && !ds.NextPrintWraps {
		if col+2 >= fb.W {
			ds.CursorCol = fb.W - 1
			ds.NextPrintWraps = true
		} else {
			ds.CursorCol = col + 2
		}
	}
}

func (e *Emulator) lineFeed() {
	fb := e.fb
	if fb.DS.CursorRow == fb.DS.ScrollBottom {
		fb.Scroll(1)
	} else if fb.DS.CursorRow < fb.H-1 {
		fb.DS.CursorRow++
	}
}

func (e *Emulator) reverseLineFeed() {
	fb := e.fb
	if fb.DS.CursorRow == fb.DS.ScrollTop {
		fb.Scroll(-1)
	} else if fb.DS.CursorRow > 0 {
		fb.DS.CursorRow--
	}
}

func (e *Emulator) execute(b byte) {
	e.joinArmed = false
	fb := e.fb
	switch b {
	case 0x07: // BEL
		fb.Ring()
	case 0x08: // BS
		if fb.DS.CursorCol > 0 {
			fb.DS.CursorCol--
		}
		fb.DS.NextPrintWraps = false
	case 0x09: // HT
		fb.DS.CursorCol = fb.NextTab(fb.DS.CursorCol)
		fb.DS.NextPrintWraps = false
	case 0x0a, 0x0b, 0x0c: // LF VT FF
		e.lineFeed()
		fb.DS.NextPrintWraps = false
	case 0x0d: // CR
		fb.DS.CursorCol = 0
		fb.DS.NextPrintWraps = false
	case 0x0e, 0x0f: // SO/SI charset shifts: unsupported, ignored
	}
}

func (e *Emulator) escDispatch(inter []byte, final byte) {
	e.joinArmed = false
	fb := e.fb
	if len(inter) == 1 && inter[0] == '#' {
		if final == '8' { // DECALN
			for r := 0; r < fb.H; r++ {
				row := fb.writableRow(r)
				for c := 0; c < fb.W; c++ {
					cell := &row.Cells[c]
					cell.SetRune('E')
					cell.Rend = SGRReset
					cell.Wide = false
				}
				row.touch()
			}
			fb.MoveCursor(0, 0)
		}
		return
	}
	if len(inter) == 1 && (inter[0] == '(' || inter[0] == ')') {
		return // charset designation: only ASCII supported
	}
	switch final {
	case '7':
		fb.SaveCursor()
	case '8':
		fb.RestoreCursor()
	case 'c':
		fb.Reset()
	case 'D': // IND
		e.lineFeed()
	case 'E': // NEL
		fb.DS.CursorCol = 0
		e.lineFeed()
	case 'H': // HTS
		fb.SetTab()
	case 'M': // RI
		e.reverseLineFeed()
	case '=':
		fb.DS.ApplicationKeypad = true
	case '>':
		fb.DS.ApplicationKeypad = false
	}
}

// param fetches params[i], substituting def for missing or default (-1)
// entries.
func param(params []int, i, def int) int {
	if i >= len(params) || params[i] < 0 {
		return def
	}
	return params[i]
}

func (e *Emulator) csiDispatch(private byte, params []int, inter []byte, final byte) {
	e.joinArmed = false
	if private == '?' {
		switch final {
		case 'h':
			e.decMode(params, true)
		case 'l':
			e.decMode(params, false)
		}
		return
	}
	if private != 0 || len(inter) > 0 {
		return // unsupported private/intermediate sequences
	}
	fb := e.fb
	ds := &fb.DS
	n := param(params, 0, 1)
	if n < 1 {
		n = 1
	}
	switch final {
	case '@': // ICH
		fb.InsertCells(n)
	case 'A': // CUU
		fb.MoveCursor(ds.CursorRow-n, ds.CursorCol)
	case 'B', 'e': // CUD, VPR
		fb.MoveCursor(ds.CursorRow+n, ds.CursorCol)
	case 'C', 'a': // CUF, HPR
		fb.MoveCursor(ds.CursorRow, ds.CursorCol+n)
	case 'D': // CUB
		fb.MoveCursor(ds.CursorRow, ds.CursorCol-n)
	case 'E': // CNL
		fb.MoveCursor(ds.CursorRow+n, 0)
	case 'F': // CPL
		fb.MoveCursor(ds.CursorRow-n, 0)
	case 'G', '`': // CHA, HPA
		fb.MoveCursor(ds.CursorRow, param(params, 0, 1)-1)
	case 'H', 'f': // CUP, HVP
		e.cursorPosition(param(params, 0, 1), param(params, 1, 1))
	case 'I': // CHT
		for i := 0; i < n; i++ {
			ds.CursorCol = fb.NextTab(ds.CursorCol)
		}
		ds.NextPrintWraps = false
	case 'J': // ED
		fb.EraseInDisplay(param(params, 0, 0))
	case 'K': // EL
		fb.EraseInLine(param(params, 0, 0))
	case 'L': // IL
		fb.InsertLines(n)
	case 'M': // DL
		fb.DeleteLines(n)
	case 'P': // DCH
		fb.DeleteCells(n)
	case 'S': // SU
		fb.Scroll(n)
	case 'T': // SD
		fb.Scroll(-n)
	case 'X': // ECH
		fb.eraseCells(ds.CursorRow, ds.CursorCol, ds.CursorCol+n)
	case 'Z': // CBT
		for i := 0; i < n; i++ {
			ds.CursorCol = fb.PrevTab(ds.CursorCol)
		}
		ds.NextPrintWraps = false
	case 'b': // REP: repeat preceding graphic character
		e.repeatLast(n)
	case 'c': // DA
		e.answerback.WriteString("\x1b[?62c")
	case 'd': // VPA
		fb.MoveCursor(param(params, 0, 1)-1, ds.CursorCol)
	case 'g': // TBC
		switch param(params, 0, 0) {
		case 0:
			fb.ClearTab()
		case 3:
			fb.ClearAllTabs()
		}
	case 'h':
		e.ansiMode(params, true)
	case 'l':
		e.ansiMode(params, false)
	case 'm':
		e.selectGraphicRendition(params)
	case 'n': // DSR
		switch param(params, 0, 0) {
		case 5:
			e.answerback.WriteString("\x1b[0n")
		case 6:
			row, col := ds.CursorRow+1, ds.CursorCol+1
			if ds.OriginMode {
				row -= ds.ScrollTop
			}
			fmt.Fprintf(&e.answerback, "\x1b[%d;%dR", row, col)
		}
	case 'r': // DECSTBM
		top := param(params, 0, 1) - 1
		bottom := param(params, 1, fb.H) - 1
		fb.SetScrollingRegion(top, bottom)
		e.cursorPosition(1, 1)
	case 's': // SCOSC
		fb.SaveCursor()
	case 'u': // SCORC
		fb.RestoreCursor()
	}
}

// cursorPosition implements CUP with origin-mode translation (1-based
// parameters).
func (e *Emulator) cursorPosition(row, col int) {
	fb := e.fb
	r := row - 1
	if fb.DS.OriginMode {
		r += fb.DS.ScrollTop
		r = clamp(r, fb.DS.ScrollTop, fb.DS.ScrollBottom)
	}
	fb.MoveCursor(r, col-1)
}

// repeatLast implements REP by reprinting the cell left of the cursor.
func (e *Emulator) repeatLast(n int) {
	fb := e.fb
	col := fb.DS.CursorCol
	if fb.DS.NextPrintWraps {
		col = fb.W - 1
	} else if col > 0 {
		col--
	} else {
		return
	}
	r := fb.Peek(fb.DS.CursorRow, col).leadRune()
	if r == 0 {
		return
	}
	if n > fb.W {
		n = fb.W
	}
	for i := 0; i < n; i++ {
		e.print(r)
	}
}

func (e *Emulator) ansiMode(params []int, set bool) {
	for i := range params {
		switch param(params, i, -1) {
		case 4: // IRM
			e.fb.DS.InsertMode = set
		}
	}
}

func (e *Emulator) decMode(params []int, set bool) {
	fb := e.fb
	for i := range params {
		switch param(params, i, -1) {
		case 1: // DECCKM
			fb.DS.ApplicationCursorKeys = set
		case 3: // DECCOLM: column-mode switch clears the screen
			fb.EraseInDisplay(2)
			fb.MoveCursor(0, 0)
		case 5: // DECSCNM
			fb.DS.ReverseVideo = set
		case 6: // DECOM
			fb.DS.OriginMode = set
			e.cursorPosition(1, 1)
		case 7: // DECAWM
			fb.DS.AutoWrapMode = set
		case 25: // DECTCEM
			fb.DS.CursorVisible = set
		case 47, 1047, 1049:
			// Alternate screen: SSP synchronizes a single screen, so
			// (like the reference implementation) we approximate with
			// save/clear on entry and clear/restore on exit.
			if set {
				fb.SaveCursor()
				fb.EraseInDisplay(2)
			} else {
				fb.EraseInDisplay(2)
				fb.RestoreCursor()
			}
		case 2004:
			fb.DS.BracketedPaste = set
		}
	}
}

func (e *Emulator) selectGraphicRendition(params []int) {
	ds := &e.fb.DS
	if len(params) == 0 {
		ds.Rend = SGRReset
		return
	}
	for i := 0; i < len(params); i++ {
		p := param(params, i, 0)
		switch {
		case p == 0:
			ds.Rend = SGRReset
		case p == 1:
			ds.Rend.Bold = true
		case p == 2:
			ds.Rend.Faint = true
		case p == 3:
			ds.Rend.Italic = true
		case p == 4:
			ds.Rend.Underline = true
		case p == 5 || p == 6:
			ds.Rend.Blink = true
		case p == 7:
			ds.Rend.Inverse = true
		case p == 8:
			ds.Rend.Invisible = true
		case p == 21 || p == 22:
			ds.Rend.Bold, ds.Rend.Faint = false, false
		case p == 23:
			ds.Rend.Italic = false
		case p == 24:
			ds.Rend.Underline = false
		case p == 25:
			ds.Rend.Blink = false
		case p == 27:
			ds.Rend.Inverse = false
		case p == 28:
			ds.Rend.Invisible = false
		case p >= 30 && p <= 37:
			ds.Rend.Fg = PaletteColor(uint8(p - 30))
		case p == 38:
			if c, skip, ok := extendedColor(params, i); ok {
				ds.Rend.Fg = c
				i += skip
			} else {
				return
			}
		case p == 39:
			ds.Rend.Fg = ColorDefault
		case p >= 40 && p <= 47:
			ds.Rend.Bg = PaletteColor(uint8(p - 40))
		case p == 48:
			if c, skip, ok := extendedColor(params, i); ok {
				ds.Rend.Bg = c
				i += skip
			} else {
				return
			}
		case p == 49:
			ds.Rend.Bg = ColorDefault
		case p >= 90 && p <= 97:
			ds.Rend.Fg = PaletteColor(uint8(p - 90 + 8))
		case p >= 100 && p <= 107:
			ds.Rend.Bg = PaletteColor(uint8(p - 100 + 8))
		}
	}
}

// extendedColor parses the 38/48 extended color forms: ;5;n (palette) and
// ;2;r;g;b (truecolor). It returns the color, how many params to skip, and
// whether parsing succeeded.
func extendedColor(params []int, i int) (Color, int, bool) {
	switch param(params, i+1, -1) {
	case 5:
		n := param(params, i+2, 0)
		return PaletteColor(uint8(clamp(n, 0, 255))), 2, true
	case 2:
		r := clamp(param(params, i+2, 0), 0, 255)
		g := clamp(param(params, i+3, 0), 0, 255)
		b := clamp(param(params, i+4, 0), 0, 255)
		return RGBColor(uint8(r), uint8(g), uint8(b)), 4, true
	}
	return ColorDefault, 0, false
}

func (e *Emulator) oscDispatch(data []byte) {
	e.joinArmed = false
	// OSC 0/1/2 set the window title.
	if len(data) >= 2 && (data[0] == '0' || data[0] == '1' || data[0] == '2') && data[1] == ';' {
		e.fb.Title = string(data[2:])
	}
}
