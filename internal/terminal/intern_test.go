package terminal

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// --- naive string-cell oracle -------------------------------------------
//
// stringScreen is a deliberately naive reimplementation of the emulator's
// print/wrap/erase/scroll semantics over plain string cells — the
// representation the packed interned cell model replaced. The differential
// fuzz below drives both through identical input and requires the screens
// (and scrollback) to match cell for cell, which checks the packing,
// interning and combine-cache logic without trusting any of it.

type stringCell struct {
	contents string
	rend     Renditions
	wide     bool
}

type stringScreen struct {
	w, h       int
	cells      [][]stringCell
	row, col   int
	nextWraps  bool
	rend       Renditions
	scrollback [][]stringCell
}

func newStringScreen(w, h int) *stringScreen {
	s := &stringScreen{w: w, h: h}
	s.cells = make([][]stringCell, h)
	for i := range s.cells {
		s.cells[i] = make([]stringCell, w)
	}
	return s
}

func (s *stringScreen) blankCell() stringCell {
	return stringCell{rend: Renditions{Bg: s.rend.Bg}}
}

func (s *stringScreen) lineFeed() {
	if s.row == s.h-1 {
		s.scrollUp(1)
	} else {
		s.row++
	}
}

func (s *stringScreen) scrollUp(n int) {
	if n > s.h {
		n = s.h
	}
	for i := 0; i < n; i++ {
		old := s.cells[0]
		s.scrollback = append(s.scrollback, old)
		if len(s.scrollback) > DefaultScrollbackLimit {
			s.scrollback = s.scrollback[1:]
		}
		copy(s.cells, s.cells[1:])
		fresh := make([]stringCell, s.w)
		for c := range fresh {
			fresh[c] = s.blankCell()
		}
		s.cells[s.h-1] = fresh
	}
}

func (s *stringScreen) normalizeWide(row int) {
	for col := 0; col < s.w; col++ {
		c := &s.cells[row][col]
		if !c.wide {
			continue
		}
		if col == s.w-1 {
			*c = stringCell{rend: Renditions{Bg: c.rend.Bg}}
			continue
		}
		s.cells[row][col+1] = stringCell{rend: Renditions{Bg: c.rend.Bg}}
		col++
	}
}

func (s *stringScreen) print(r rune) {
	width := RuneWidth(r)
	if width == 0 {
		row, col := s.row, s.col
		if !s.nextWraps && col > 0 {
			col--
		}
		if col > 0 && s.cells[row][col].contents == "" && s.cells[row][col-1].wide {
			col--
		}
		if c := s.cells[row][col].contents; c != "" && len(c)+len(string(r)) <= maxGraphemeBytes {
			s.cells[row][col].contents += string(r)
		}
		return
	}
	if s.nextWraps {
		s.col = 0
		s.nextWraps = false
		s.lineFeed()
	}
	if width == 2 && s.col == s.w-1 {
		s.col = 0
		s.lineFeed()
	}
	row, col := s.row, s.col
	if col > 0 && s.cells[row][col-1].wide {
		lead := &s.cells[row][col-1]
		*lead = stringCell{rend: Renditions{Bg: lead.rend.Bg}}
	}
	s.cells[row][col] = stringCell{contents: string(r), rend: s.rend, wide: width == 2}
	if width == 2 && col+1 < s.w {
		s.cells[row][col+1] = s.blankCell()
	}
	s.normalizeWide(row)
	if col+width >= s.w {
		s.col = s.w - 1
		s.nextWraps = true
	} else {
		s.col = col + width
		s.nextWraps = false
	}
}

func (s *stringScreen) eraseInLine(mode int) {
	from, to := 0, s.w
	switch mode {
	case 0:
		from = s.col
	case 1:
		to = s.col + 1
	}
	for c := from; c < to; c++ {
		s.cells[s.row][c] = s.blankCell()
	}
	s.normalizeWide(s.row)
}

func (s *stringScreen) carriageReturn() { s.col = 0; s.nextWraps = false }

// verifyAgainst requires the real framebuffer to match the oracle exactly:
// contents, rendition and wide flag per cell, cursor, and scrollback text.
func (s *stringScreen) verifyAgainst(t *testing.T, fb *Framebuffer, label string) {
	t.Helper()
	if fb.DS.CursorRow != s.row || fb.DS.CursorCol != s.col || fb.DS.NextPrintWraps != s.nextWraps {
		t.Fatalf("%s: cursor (%d,%d wrap=%v) != oracle (%d,%d wrap=%v)", label,
			fb.DS.CursorRow, fb.DS.CursorCol, fb.DS.NextPrintWraps, s.row, s.col, s.nextWraps)
	}
	for r := 0; r < s.h; r++ {
		for c := 0; c < s.w; c++ {
			got := fb.Peek(r, c)
			want := s.cells[r][c]
			if got.ContentsString() != want.contents || got.Rend != want.rend || got.Wide != want.wide {
				t.Fatalf("%s: cell (%d,%d) = {%q %v wide=%v}, oracle {%q %v wide=%v}", label, r, c,
					got.ContentsString(), got.Rend, got.Wide, want.contents, want.rend, want.wide)
			}
		}
	}
	if fb.ScrollbackLines() != len(s.scrollback) {
		t.Fatalf("%s: scrollback %d lines, oracle %d", label, fb.ScrollbackLines(), len(s.scrollback))
	}
	for i := range s.scrollback {
		var want strings.Builder
		for _, c := range s.scrollback[i] {
			if c.contents == "" {
				want.WriteString(" ")
			} else {
				want.WriteString(c.contents)
			}
		}
		if got := fb.ScrollbackText(i); got != want.String() {
			t.Fatalf("%s: scrollback line %d = %q, oracle %q", label, i, got, want.String())
		}
	}
}

// TestPackedCellDifferentialFuzz drives the emulator and the naive
// string-cell oracle through identical random unicode-heavy input —
// printing (ASCII, CJK, emoji, combining marks), wrapping, erasing and
// scrolling — and requires bit-for-bit agreement after every chunk.
func TestPackedCellDifferentialFuzz(t *testing.T) {
	runes := []rune{
		'a', 'b', 'z', ' ', '0', '~', // ASCII
		'中', '日', '語', '漢', '字', // CJK wide
		'🙂', '🚀', // emoji (wide)
		'é', 'ü', 'ñ', '№', // single-rune non-ASCII
		0x0301, 0x0308, 0x0323, // combining marks
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(30), 2+rng.Intn(10)
		emu := NewEmulator(w, h)
		oracle := newStringScreen(w, h)

		renditions := []struct {
			seq  string
			rend Renditions
		}{
			{"\x1b[0m", Renditions{}},
			{"\x1b[1m", Renditions{Bold: true}},
			{"\x1b[31m", Renditions{Fg: PaletteColor(1)}},
			{"\x1b[42m", Renditions{Bg: PaletteColor(2)}},
		}

		for step := 0; step < 400; step++ {
			switch k := rng.Intn(20); {
			case k < 12: // print a random rune
				r := runes[rng.Intn(len(runes))]
				emu.WriteString(string(r))
				oracle.print(r)
			case k < 14: // newline
				emu.WriteString("\r\n")
				oracle.carriageReturn()
				oracle.lineFeed()
			case k < 15: // bare CR
				emu.WriteString("\r")
				oracle.carriageReturn()
			case k < 17: // erase in line
				mode := rng.Intn(3)
				emu.WriteString(fmt.Sprintf("\x1b[%dK", mode))
				oracle.eraseInLine(mode)
			case k < 18: // scroll up
				n := 1 + rng.Intn(3)
				emu.WriteString(fmt.Sprintf("\x1b[%dS", n))
				oracle.scrollUp(n)
			default: // change rendition
				sel := renditions[rng.Intn(len(renditions))]
				emu.WriteString(sel.seq)
				cur := oracle.rend
				switch sel.seq {
				case "\x1b[0m":
					cur = Renditions{}
				case "\x1b[1m":
					cur.Bold = true
				case "\x1b[31m":
					cur.Fg = PaletteColor(1)
				case "\x1b[42m":
					cur.Bg = PaletteColor(2)
				}
				oracle.rend = cur
			}
			if step%25 == 0 || step == 399 {
				oracle.verifyAgainst(t, emu.Framebuffer(),
					fmt.Sprintf("seed %d step %d (%dx%d)", seed, step, w, h))
			}
			if step%60 == 0 {
				// Snapshots interleaved with printing: the packed model must
				// stay correct across copy-on-write materialization.
				_ = emu.Framebuffer().Clone()
			}
		}
	}
}

// TestInternTableConcurrentEmulators hammers the process-wide grapheme
// intern table from many emulators at once (run under -race in CI): every
// goroutine prints overlapping sets of combining clusters and verifies its
// own screen afterwards, so lost updates, torn snapshots or misindexed
// clusters all surface.
func TestInternTableConcurrentEmulators(t *testing.T) {
	const goroutines = 16
	const rounds = 200
	marks := []rune{0x0301, 0x0308, 0x0323, 0x0304, 0x030a}
	before := InternedGraphemes()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			emu := NewEmulator(40, 4)
			emu.Framebuffer().SetScrollbackLimit(-1)
			for i := 0; i < rounds; i++ {
				base := rune('a' + (g+i)%26)
				m1 := marks[(g+i)%len(marks)]
				m2 := marks[(g*7+i)%len(marks)]
				emu.WriteString("\r")
				emu.WriteString(string(base))
				emu.WriteString(string(m1))
				emu.WriteString(string(m2))
				want := string([]rune{base, m1, m2})
				got := emu.Framebuffer().Peek(emu.Framebuffer().DS.CursorRow, 0).ContentsString()
				if got != want {
					errs <- fmt.Errorf("goroutine %d round %d: cluster %q, want %q", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The table must have deduplicated across goroutines: 26 bases × 25
	// mark pairs is the cluster universe (plus the 26×5 one-mark prefixes).
	if n := InternedGraphemes() - before; n > 26*5*5+26*5 {
		t.Errorf("intern table grew by %d clusters; deduplication failed", n)
	}
}

// TestInternedEqualityCanonical pins the canonicalization rule cell
// equality relies on: equal grapheme strings always produce equal packed
// words, whether built by SetContents or by combining-mark appends.
func TestInternedEqualityCanonical(t *testing.T) {
	var a, b Cell
	a.SetContents("é") // single precomposed rune: inline
	b.SetRune('é')
	if !a.Equal(&b) {
		t.Fatal("inline rune cells not equal")
	}

	emu := NewEmulator(10, 2)
	emu.WriteString("é̈") // built by combining appends
	printed := emu.Framebuffer().Peek(0, 0)

	var direct Cell
	direct.SetContents("é̈") // built by direct interning
	direct.Rend = printed.Rend
	if !printed.Equal(&direct) {
		t.Fatalf("combining-built %q != interned %q", printed.ContentsString(), direct.ContentsString())
	}

	// Blank and explicit space render identically and compare equal.
	var blank, space Cell
	space.SetRune(' ')
	if !blank.Equal(&space) || !space.Equal(&blank) {
		t.Fatal("space/blank equality broken")
	}
	if space.IsBlank() != true || blank.IsBlank() != true {
		t.Fatal("IsBlank broken")
	}
}

// TestCombiningFloodBoundedIntern proves a hostile combining-mark flood
// (Zalgo text: one base character followed by an endless run of marks)
// cannot grow the process-wide intern table without bound: the cluster is
// capped at maxGraphemeBytes, marks beyond it are dropped, and the capped
// path is cached so the flood runs allocation-free.
func TestCombiningFloodBoundedIntern(t *testing.T) {
	before := InternedGraphemes()
	emu := NewEmulator(20, 4)
	emu.WriteString("x")
	marks := []rune{0x0300, 0x0301, 0x0302, 0x0303}
	for i := 0; i < 500; i++ {
		emu.WriteString(string(marks[i%len(marks)]))
	}
	got := emu.Framebuffer().Peek(0, 0).ContentsString()
	if len(got) > maxGraphemeBytes {
		t.Fatalf("cluster grew to %d bytes, cap is %d", len(got), maxGraphemeBytes)
	}
	// Each retained mark adds one prefix cluster; the table delta must be
	// on the order of the cap, not the flood length.
	if delta := InternedGraphemes() - before; delta > maxGraphemeBytes {
		t.Fatalf("flood interned %d clusters, want ≤ %d", delta, maxGraphemeBytes)
	}
	// Steady state: the over-cap drop is cached, so the flood allocates
	// nothing per mark.
	mark := []byte(string(marks[0]))
	if avg := testing.AllocsPerRun(200, func() {
		emu.Write(mark)
	}); avg != 0 {
		t.Errorf("capped combining flood allocates %v per mark, want 0", avg)
	}
}

// TestInternTableCardinalityBounded fills a private intern table to its
// cap with distinct clusters and proves the degradation contract: existing
// clusters keep resolving exactly, novel clusters are refused (intern
// reports !ok), novel combining appends drop the mark instead of growing
// the table, and growth stays amortized (the fill completes quickly).
func TestInternTableCardinalityBounded(t *testing.T) {
	tb := &internTable{
		byStr:   make(map[string]uint32),
		combine: make(map[combineKey]uint32),
	}
	first, ok := tb.intern("aa")
	if !ok {
		t.Fatal("first intern refused")
	}
	for i := 1; i < maxInternedGraphemes; i++ {
		if _, ok := tb.intern(fmt.Sprintf("c%d", i)); !ok {
			t.Fatalf("intern refused at %d, cap is %d", i, maxInternedGraphemes)
		}
	}
	if _, ok := tb.intern("novel-cluster"); ok {
		t.Fatal("intern accepted a cluster beyond the cardinality cap")
	}
	// Existing clusters still resolve, by word and by string.
	if got := tb.lookup(first); got != "aa" {
		t.Fatalf("lookup(first) = %q after fill", got)
	}
	if v, ok := tb.intern("aa"); !ok || v != first {
		t.Fatalf("re-intern of existing cluster = (%v,%v), want (%v,true)", v, ok, first)
	}
	// A combining append that would need a new cluster drops the mark.
	if got := tb.appendRune(first, 0x0301); got != first {
		t.Fatalf("appendRune at capacity = %#x, want unchanged %#x", got, first)
	}
	if n := len(*tb.strs.Load()); n != maxInternedGraphemes {
		t.Fatalf("table holds %d clusters, cap is %d", n, maxInternedGraphemes)
	}
}

// TestUnicodePrintPathZeroAlloc guards the packed model's reason to
// exist: steady-state printing of CJK text and of combining clusters — the
// workloads that used to allocate a string per cell — performs no heap
// allocations at all.
func TestUnicodePrintPathZeroAlloc(t *testing.T) {
	emu := NewEmulator(80, 24)
	emu.Framebuffer().SetScrollbackLimit(-1)
	cjk := []byte("漢字出力の定常状態\r\n")
	if avg := testing.AllocsPerRun(200, func() {
		emu.Write(cjk)
	}); avg != 0 {
		t.Errorf("CJK print flood allocates %v per line, want 0", avg)
	}

	comb := []byte("a\u0301e\u0308o\u0323\r\n") // combining-built á ë ọ
	emu.Write(comb)                             // warm the combine cache
	if avg := testing.AllocsPerRun(200, func() {
		emu.Write(comb)
	}); avg != 0 {
		t.Errorf("combining print flood allocates %v per line, want 0", avg)
	}
}
