package terminal

import (
	"fmt"
	"math/rand"
	"testing"
)

// oracleSnapshot is a brute-force deep copy of everything a Framebuffer
// renders: the property tests compare copy-on-write clones against it to
// prove snapshots never alias visible state.
type oracleSnapshot struct {
	w, h      int
	cells     [][]Cell
	ds        DrawState
	title     string
	bellCount uint64
	echoAck   uint64
}

func takeOracle(f *Framebuffer) *oracleSnapshot {
	o := &oracleSnapshot{w: f.W, h: f.H, ds: f.DS, title: f.Title, bellCount: f.BellCount, echoAck: f.EchoAck}
	o.ds.Tabs = append([]bool(nil), f.DS.Tabs...)
	o.cells = make([][]Cell, f.H)
	for r := 0; r < f.H; r++ {
		o.cells[r] = make([]Cell, f.W)
		for c := 0; c < f.W; c++ {
			o.cells[r][c] = *f.Peek(r, c)
		}
	}
	return o
}

func (o *oracleSnapshot) verify(t *testing.T, f *Framebuffer, label string) {
	t.Helper()
	if f.W != o.w || f.H != o.h {
		t.Fatalf("%s: dimensions changed: %dx%d != %dx%d", label, f.W, f.H, o.w, o.h)
	}
	if f.Title != o.title || f.BellCount != o.bellCount || f.EchoAck != o.echoAck {
		t.Fatalf("%s: metadata changed", label)
	}
	if f.DS.CursorRow != o.ds.CursorRow || f.DS.CursorCol != o.ds.CursorCol || f.DS.Rend != o.ds.Rend {
		t.Fatalf("%s: draw state changed", label)
	}
	for r := 0; r < o.h; r++ {
		for c := 0; c < o.w; c++ {
			if *f.Peek(r, c) != o.cells[r][c] {
				t.Fatalf("%s: cell (%d,%d) changed: %+v != %+v", label, r, c, *f.Peek(r, c), o.cells[r][c])
			}
		}
	}
}

// randomOps drives the emulator with a mix of everything that mutates the
// grid: printing (ASCII, wide, combining), control characters, erases,
// scrolls, insert/delete, SGR, cursor motion and region changes.
func randomOps(rng *rand.Rand, emu *Emulator, n int) {
	fb := emu.Framebuffer()
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0, 1, 2, 3, 4:
			emu.WriteString(string(rune('a' + rng.Intn(26))))
		case 5:
			emu.WriteString("中") // wide
		case 6:
			emu.WriteString("é") // combining accent
		case 7:
			emu.WriteString("\r\n")
		case 8:
			emu.WriteString(fmt.Sprintf("\x1b[%d;%dH", rng.Intn(30)+1, rng.Intn(90)+1))
		case 9:
			emu.WriteString(fmt.Sprintf("\x1b[%dm", []int{0, 1, 4, 7, 31, 42}[rng.Intn(6)]))
		case 10:
			emu.WriteString([]string{"\x1b[K", "\x1b[1K", "\x1b[2K", "\x1b[J", "\x1b[2J"}[rng.Intn(5)])
		case 11:
			emu.WriteString(fmt.Sprintf("\x1b[%d%c", rng.Intn(3)+1, []byte("SLMP@T")[rng.Intn(6)]))
		case 12:
			emu.WriteString(fmt.Sprintf("\x1b[%d;%dr", rng.Intn(10)+1, rng.Intn(14)+11))
		case 13:
			fb.Cell(rng.Intn(fb.H), rng.Intn(fb.W)).SetContents("Z")
			fb.Row(rng.Intn(fb.H)).Touch()
		}
	}
}

// TestCloneIndependenceProperty proves the copy-on-write invariant: after
// Clone, arbitrary writes to either framebuffer are never visible through
// the other. Each side is checked against a brute-force deep-copy oracle
// taken at clone time.
func TestCloneIndependenceProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		emu := NewEmulator(40, 12)
		randomOps(rng, emu, 200)

		snap := emu.Framebuffer().Clone()
		snapOracle := takeOracle(snap)

		// Mutate the live side; the snapshot must not move.
		randomOps(rng, emu, 200)
		snapOracle.verify(t, snap, fmt.Sprintf("seed %d: snapshot after live writes", seed))

		// Mutate the snapshot side (as the receiver does when applying a
		// diff to a cloned state); the live screen must not move either.
		liveOracle := takeOracle(emu.Framebuffer())
		snapEmu := NewEmulatorWithFramebuffer(snap)
		randomOps(rng, snapEmu, 200)
		liveOracle.verify(t, emu.Framebuffer(), fmt.Sprintf("seed %d: live after snapshot writes", seed))

		// Clone chains: clone of a clone stays independent too.
		chain := snap.Clone()
		chainOracle := takeOracle(chain)
		randomOps(rng, snapEmu, 100)
		chainOracle.verify(t, chain, fmt.Sprintf("seed %d: chained clone", seed))
	}
}

// TestCloneIndependenceBothWays pins the symmetric case with deterministic
// writes: mutations of the original and of the clone each leave the other
// bit-for-bit unchanged.
func TestCloneIndependenceBothWays(t *testing.T) {
	emu := NewEmulator(20, 6)
	emu.WriteString("hello\r\nworld\r\n\x1b[1;31mred")

	clone := emu.Framebuffer().Clone()
	origOracle := takeOracle(emu.Framebuffer())
	cloneOracle := takeOracle(clone)

	// Write through every public mutation surface of the clone.
	clone.Cell(0, 0).SetContents("X")
	clone.Row(1).Cells[0].SetContents("Y")
	clone.Row(1).Touch()
	clone.EraseInLine(2)
	clone.Scroll(1)
	origOracle.verify(t, emu.Framebuffer(), "original after clone writes")

	// And the original: the clone's remaining shared rows must not move.
	clone2 := emu.Framebuffer().Clone()
	clone2Oracle := takeOracle(clone2)
	emu.WriteString("\x1b[2;1Hoverwritten entirely")
	emu.Framebuffer().Scroll(2)
	emu.Framebuffer().Cell(3, 3).SetContents("Q")
	clone2Oracle.verify(t, clone2, "clone after original writes")
	_ = cloneOracle
}

// TestSnapshotDiffZeroAlloc is the regression guard for the zero-allocation
// diff pipeline: with a warm FrameWriter and a reused output buffer, the
// sender's steady-state paths perform no heap allocations.
func TestSnapshotDiffZeroAlloc(t *testing.T) {
	emu := NewEmulator(80, 24)
	for i := 0; i < 23; i++ {
		emu.WriteString(fmt.Sprintf("line %d with some text\r\n", i))
	}
	emu.WriteString("$ ")

	// Idle tick: comparing the live state against an identical snapshot.
	snap := emu.Framebuffer().Clone()
	if avg := testing.AllocsPerRun(100, func() {
		if !emu.Framebuffer().Equal(snap) {
			t.Fatal("states diverged")
		}
	}); avg != 0 {
		t.Errorf("idle-tick Equal allocates %v per run, want 0", avg)
	}

	// Steady-state diff: a changed screen rendered with reused scratch.
	prev := emu.Framebuffer().Clone()
	emu.WriteString("x")
	var fw FrameWriter
	var buf []byte
	buf = fw.AppendFrame(buf[:0], true, prev, emu.Framebuffer()) // warm the scratch
	if avg := testing.AllocsPerRun(100, func() {
		buf = fw.AppendFrame(buf[:0], true, prev, emu.Framebuffer())
	}); avg != 0 {
		t.Errorf("steady-state AppendFrame allocates %v per run, want 0", avg)
	}
	if len(buf) == 0 {
		t.Fatal("diff unexpectedly empty")
	}

	// Keystroke path: once the cursor row has been materialized after a
	// snapshot, further printing into it allocates nothing.
	emu.WriteString("y") // materialize
	keys := []byte("abcdefgh")
	i := 0
	if avg := testing.AllocsPerRun(100, func() {
		emu.Write(keys[i%len(keys) : i%len(keys)+1])
		i++
	}); avg != 0 {
		t.Errorf("keystroke print path allocates %v per run, want 0", avg)
	}

	// Full repaint with reused scratch is allocation-free as well.
	buf = fw.AppendFrame(buf[:0], false, nil, emu.Framebuffer())
	if avg := testing.AllocsPerRun(100, func() {
		buf = fw.AppendFrame(buf[:0], false, nil, emu.Framebuffer())
	}); avg != 0 {
		t.Errorf("full-repaint AppendFrame allocates %v per run, want 0", avg)
	}
}

// TestSnapshotCloneCheapAlloc bounds the copy-on-write snapshot cost: a
// clone plus the single-row materialization of the next keystroke stays
// within a handful of fixed-size allocations, independent of screen size.
func TestSnapshotCloneCheapAlloc(t *testing.T) {
	emu := NewEmulator(200, 60) // large screen: cost must not scale with it
	for i := 0; i < 59; i++ {
		emu.WriteString(fmt.Sprintf("wide screen line %d\r\n", i))
	}
	var sink *Framebuffer
	avg := testing.AllocsPerRun(100, func() {
		sink = emu.Framebuffer().Clone()
		emu.WriteString("k") // materializes exactly one row
	})
	if avg > 6 {
		t.Errorf("clone+keystroke tick allocates %v per run, want <= 6", avg)
	}
	_ = sink
}
