package terminal

import (
	"fmt"
	"strings"
	"testing"
)

// These benchmarks are the unicode-heavy and deep-scrollback companions to
// the ASCII snapshot/diff suite: the workloads the packed interned cell
// model and the structurally-shared scrollback exist for. They use only
// the public emulator/diff API, so they measure any cell representation.

// cjkEditorLines is an "editor" screenful in the CJK/emoji/combining mix a
// real compose session produces: wide ideographs, emoji, and accented
// text built from combining marks.
func cjkEditorLines() [][]byte {
	var lines [][]byte
	for i := 0; i < 16; i++ {
		lines = append(lines, []byte(fmt.Sprintf(
			"第%d行: 端末は状態を同期する 🙂 café déjà vu 終端\r\n", i)))
	}
	return lines
}

// BenchmarkSnapshotDiffCJKEditor is the sender tick under a CJK/emoji
// editor flood: every tick writes unicode-heavy lines, diffs against the
// previous snapshot, and takes a new snapshot.
func BenchmarkSnapshotDiffCJKEditor(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	prev := emu.Framebuffer().Clone()
	lines := cjkEditorLines()
	var fw FrameWriter
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			emu.Write(lines[(i*4+j)%len(lines)])
		}
		buf = fw.AppendFrame(buf[:0], true, prev, emu.Framebuffer())
		prev = emu.Framebuffer().Clone()
	}
	benchSink = buf
}

// BenchmarkPrintCJKFlood isolates the emulator print path on pure wide
// ideographs (no diffing): the per-cell cost of non-ASCII contents.
func BenchmarkPrintCJKFlood(b *testing.B) {
	emu := NewEmulator(80, 24)
	emu.Framebuffer().SetScrollbackLimit(-1)
	line := []byte(strings.Repeat("漢字書込測定中", 5) + "\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emu.Write(line)
	}
}

// BenchmarkPrintCombiningFlood isolates the combining-mark attach path:
// every printed grapheme is a base letter plus two combining accents, so
// each cell's contents is a multi-rune cluster.
func BenchmarkPrintCombiningFlood(b *testing.B) {
	emu := NewEmulator(80, 24)
	emu.Framebuffer().SetScrollbackLimit(-1)
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		sb.WriteString(string(rune('a'+i%26)) + "́̈")
	}
	sb.WriteString("\r\n")
	line := []byte(sb.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emu.Write(line)
	}
}

// deepScrollbackEmulator returns an emulator whose framebuffer holds a
// full scrollback history (the pager/compile-log steady state).
func deepScrollbackEmulator(w, h int) *Emulator {
	emu := NewEmulator(w, h)
	for i := 0; i < DefaultScrollbackLimit+h; i++ {
		emu.WriteString(fmt.Sprintf("log line %4d: object compiled without warnings\r\n", i))
	}
	return emu
}

// BenchmarkSnapshotCloneDeepScrollback isolates the per-send snapshot cost
// once the scrollback is full — the dominant remaining clone cost before
// scrollback sharing.
func BenchmarkSnapshotCloneDeepScrollback(b *testing.B) {
	emu := deepScrollbackEmulator(80, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCloneSink = emu.Framebuffer().Clone()
	}
}

// BenchmarkSnapshotCloneIntoDeepScrollback is the pooled-snapshot path the
// statesync layer actually runs (retired shells reused via CloneInto): a
// full-history snapshot at zero allocations.
func BenchmarkSnapshotCloneIntoDeepScrollback(b *testing.B) {
	emu := deepScrollbackEmulator(80, 24)
	live := emu.Framebuffer()
	shells := [2]*Framebuffer{live.Clone(), live.Clone()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shells[i&1] = live.CloneInto(shells[i&1])
	}
	benchCloneSink = shells[0]
}

// BenchmarkSnapshotDiffPagerScrollback is the full sender tick of a
// deep-scroll "pager" session with history enabled: scroll several lines,
// diff, snapshot — every tick both pushes scrollback and clones it.
func BenchmarkSnapshotDiffPagerScrollback(b *testing.B) {
	emu := deepScrollbackEmulator(80, 24)
	prev := emu.Framebuffer().Clone()
	lines := make([][]byte, 8)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("pager line %d: section text with explanatory words\r\n", i))
	}
	var fw FrameWriter
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			emu.Write(lines[(i*4+j)%len(lines)])
		}
		buf = fw.AppendFrame(buf[:0], true, prev, emu.Framebuffer())
		prev = emu.Framebuffer().Clone()
	}
	benchSink = buf
}
