package terminal

import (
	"math/rand"
	"testing"
)

// TestEmulatorFuzzNeverPanicsAndKeepsInvariants throws random byte soup at
// the emulator — including truncated escape sequences, broken UTF-8 and
// binary garbage — and checks the structural invariants everything else
// relies on: cursor in bounds, scroll region sane, and the wide-character
// invariant (no leader in the last column; continuations are blanks).
func TestEmulatorFuzzNeverPanicsAndKeepsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	interesting := []byte{0x1b, '[', ']', ';', '?', 'H', 'J', 'K', 'm', 'r', 'h', 'l',
		'A', 'L', 'M', 'P', '@', 'S', 'T', 0x07, 0x08, 0x09, 0x0a, 0x0d, 0x7f,
		'0', '1', '9', 0xc3, 0xa9, 0xe6, 0x97, 0xa5, 0xf0, 0x9f, 0x99, 0x82, 0xff}
	for iter := 0; iter < 300; iter++ {
		w := 1 + rng.Intn(100)
		h := 1 + rng.Intn(40)
		e := NewEmulator(w, h)
		buf := make([]byte, 500)
		for i := range buf {
			if rng.Intn(3) == 0 {
				buf[i] = interesting[rng.Intn(len(interesting))]
			} else {
				buf[i] = byte(rng.Intn(256))
			}
		}
		e.Write(buf)
		fb := e.Framebuffer()
		ds := fb.DS
		if ds.CursorRow < 0 || ds.CursorRow >= fb.H || ds.CursorCol < 0 || ds.CursorCol >= fb.W {
			t.Fatalf("iter %d: cursor out of bounds (%d,%d) on %dx%d", iter, ds.CursorRow, ds.CursorCol, fb.W, fb.H)
		}
		if ds.ScrollTop < 0 || ds.ScrollBottom >= fb.H || ds.ScrollTop > ds.ScrollBottom {
			t.Fatalf("iter %d: bad scroll region [%d,%d]", iter, ds.ScrollTop, ds.ScrollBottom)
		}
		for r := 0; r < fb.H; r++ {
			for c := 0; c < fb.W; c++ {
				cell := fb.Cell(r, c)
				if cell.Wide {
					if c == fb.W-1 {
						t.Fatalf("iter %d: wide leader in last column (%d,%d)", iter, r, c)
					}
					if fb.Cell(r, c+1).ContentsString() != "" {
						t.Fatalf("iter %d: wide continuation at (%d,%d) holds %q", iter, r, c+1, fb.Cell(r, c+1).ContentsString())
					}
				}
			}
		}
		// And the screen must still be render-round-trippable.
		frame := NewFrame(false, nil, fb)
		back := NewEmulator(fb.W, fb.H)
		back.Write(frame)
		if !back.Framebuffer().Equal(fb) {
			t.Fatalf("iter %d: fuzzed screen does not round-trip through the renderer", iter)
		}
	}
}

// TestResizeFuzz resizes a live screen repeatedly while writing; no panics,
// invariants hold.
func TestResizeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEmulator(80, 24)
	for i := 0; i < 200; i++ {
		e.WriteString("some text that may wrap around the margin 日本語\r\n")
		e.Resize(1+rng.Intn(130), 1+rng.Intn(50))
		fb := e.Framebuffer()
		if fb.DS.CursorRow >= fb.H || fb.DS.CursorCol >= fb.W {
			t.Fatalf("cursor out of bounds after resize %dx%d", fb.W, fb.H)
		}
	}
}
