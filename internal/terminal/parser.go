package terminal

import "unicode/utf8"

// dispatcher receives the parser's decoded actions. The Emulator is the
// production implementation; tests can supply recorders.
type dispatcher interface {
	// print draws one decoded rune at the cursor.
	print(r rune)
	// execute performs a C0 control function.
	execute(b byte)
	// escDispatch handles a completed ESC sequence.
	escDispatch(inter []byte, final byte)
	// csiDispatch handles a completed CSI sequence. private is the
	// leading private-marker byte ('?', '>', '=', '<') or 0.
	csiDispatch(private byte, params []int, inter []byte, final byte)
	// oscDispatch handles a completed OSC string.
	oscDispatch(data []byte)
}

type parserState int

const (
	sGround parserState = iota
	sEscape
	sEscapeInter
	sCSIEntry
	sCSIParam
	sCSIInter
	sCSIIgnore
	sOSC
	sOSCEsc    // saw ESC inside OSC (possible ST)
	sString    // DCS/SOS/PM/APC: swallowed
	sStringEsc // saw ESC inside string
)

const (
	maxParams    = 32
	maxParamVal  = 99999
	maxOSCLength = 1024
)

// Parser is an ECMA-48 escape-sequence parser in the style of the VT500
// state machine, with integrated UTF-8 decoding. Feed it bytes; it calls
// the dispatcher with decoded actions. The zero value is ready to use.
type Parser struct {
	state  parserState
	inter  []byte
	params []int
	// paramSeen tracks whether any digit arrived for the current param,
	// to distinguish "default" from explicit 0.
	curParam  int
	haveParam bool
	private   byte
	osc       []byte

	// UTF-8 assembly.
	u8buf  [4]byte
	u8n    int
	u8want int
}

func (p *Parser) reset() {
	p.state = sGround
	p.clearSeq()
}

func (p *Parser) clearSeq() {
	p.inter = p.inter[:0]
	p.params = p.params[:0]
	p.curParam = 0
	p.haveParam = false
	p.private = 0
	p.osc = p.osc[:0]
}

// Feed parses data, invoking d for every completed action.
func (p *Parser) Feed(data []byte, d dispatcher) {
	for _, b := range data {
		p.feedByte(b, d)
	}
}

func (p *Parser) feedByte(b byte, d dispatcher) {
	// CAN and SUB abort any sequence; ESC restarts (handled per state).
	if b == 0x18 || b == 0x1a {
		p.reset()
		return
	}

	switch p.state {
	case sGround:
		p.ground(b, d)

	case sEscape:
		switch {
		case b == 0x1b:
			p.clearSeq()
		case b < 0x20:
			d.execute(b)
		case b <= 0x2f: // intermediate
			p.inter = append(p.inter, b)
			p.state = sEscapeInter
		case b == '[':
			p.clearSeq()
			p.state = sCSIEntry
		case b == ']':
			p.clearSeq()
			p.state = sOSC
		case b == 'P' || b == 'X' || b == '^' || b == '_':
			p.clearSeq()
			p.state = sString
		case b <= 0x7e:
			d.escDispatch(p.inter, b)
			p.reset()
		default:
			p.reset()
		}

	case sEscapeInter:
		switch {
		case b == 0x1b:
			p.clearSeq()
			p.state = sEscape
		case b < 0x20:
			d.execute(b)
		case b <= 0x2f:
			p.inter = append(p.inter, b)
		case b <= 0x7e:
			d.escDispatch(p.inter, b)
			p.reset()
		default:
			p.reset()
		}

	case sCSIEntry, sCSIParam, sCSIInter:
		p.csi(b, d)

	case sCSIIgnore:
		switch {
		case b == 0x1b:
			p.clearSeq()
			p.state = sEscape
		case b >= 0x40 && b <= 0x7e:
			p.reset()
		}

	case sOSC:
		switch {
		case b == 0x07: // BEL terminator
			d.oscDispatch(p.osc)
			p.reset()
		case b == 0x1b:
			p.state = sOSCEsc
		case b >= 0x20:
			if len(p.osc) < maxOSCLength {
				p.osc = append(p.osc, b)
			}
		}

	case sOSCEsc:
		if b == '\\' { // ST terminator
			d.oscDispatch(p.osc)
			p.reset()
		} else {
			// Not ST: abandon the OSC, reprocess as escape.
			p.clearSeq()
			p.state = sEscape
			p.feedByte(b, d)
		}

	case sString:
		if b == 0x1b {
			p.state = sStringEsc
		} else if b == 0x07 {
			p.reset()
		}

	case sStringEsc:
		if b == '\\' {
			p.reset()
		} else {
			p.clearSeq()
			p.state = sEscape
			p.feedByte(b, d)
		}
	}
}

func (p *Parser) ground(b byte, d dispatcher) {
	switch {
	case b == 0x1b:
		p.flushUTF8(d)
		p.clearSeq()
		p.state = sEscape
	case b < 0x20 || b == 0x7f:
		p.flushUTF8(d)
		d.execute(b)
	case b < 0x80:
		p.flushUTF8(d)
		d.print(rune(b))
	default:
		p.utf8Byte(b, d)
	}
}

// utf8Byte assembles multi-byte UTF-8 sequences.
func (p *Parser) utf8Byte(b byte, d dispatcher) {
	if p.u8want == 0 {
		switch {
		case b&0xe0 == 0xc0:
			p.u8want = 2
		case b&0xf0 == 0xe0:
			p.u8want = 3
		case b&0xf8 == 0xf0:
			p.u8want = 4
		default:
			d.print(utf8.RuneError)
			return
		}
		p.u8buf[0] = b
		p.u8n = 1
		return
	}
	if b&0xc0 != 0x80 {
		// Broken sequence: emit replacement, reprocess byte fresh.
		p.flushUTF8(d)
		p.ground(b, d)
		return
	}
	p.u8buf[p.u8n] = b
	p.u8n++
	if p.u8n == p.u8want {
		r, _ := utf8.DecodeRune(p.u8buf[:p.u8n])
		p.u8n, p.u8want = 0, 0
		d.print(r)
	}
}

// flushUTF8 terminates a dangling partial sequence with U+FFFD.
func (p *Parser) flushUTF8(d dispatcher) {
	if p.u8want != 0 {
		p.u8n, p.u8want = 0, 0
		d.print(utf8.RuneError)
	}
}

func (p *Parser) csi(b byte, d dispatcher) {
	switch {
	case b == 0x1b:
		p.clearSeq()
		p.state = sEscape
	case b < 0x20:
		d.execute(b)
	case b >= '0' && b <= '9':
		if p.state == sCSIInter {
			p.state = sCSIIgnore
			return
		}
		p.curParam = p.curParam*10 + int(b-'0')
		if p.curParam > maxParamVal {
			p.curParam = maxParamVal
		}
		p.haveParam = true
		p.state = sCSIParam
	case b == ';' || b == ':':
		if p.state == sCSIInter {
			p.state = sCSIIgnore
			return
		}
		p.pushParam()
		p.state = sCSIParam
	case b >= 0x3c && b <= 0x3f: // private markers ? > = <
		if p.state != sCSIEntry {
			p.state = sCSIIgnore
			return
		}
		p.private = b
	case b <= 0x2f: // intermediate
		p.inter = append(p.inter, b)
		p.state = sCSIInter
	case b <= 0x7e: // final
		p.pushParam()
		d.csiDispatch(p.private, p.params, p.inter, b)
		p.reset()
	default:
		p.state = sCSIIgnore
	}
}

func (p *Parser) pushParam() {
	if len(p.params) >= maxParams {
		return
	}
	if p.haveParam {
		p.params = append(p.params, p.curParam)
	} else {
		p.params = append(p.params, -1) // default marker
	}
	p.curParam = 0
	p.haveParam = false
}
