package terminal

import "repro/internal/binio"

// This file exports the row-granular slices of the snapshot codec that
// internal/sessiond's incremental journal uses to persist *screen deltas*:
// instead of re-serializing the whole grid on every flush, a delta record
// carries the meta section (cursor, modes, title, counters) plus only the
// rows whose generation changed since the last durable record. The wire
// layouts are exactly the corresponding sections of AppendSnapshot, so a
// checkpoint row and a delta row are interchangeable on decode.

// AppendMetaSnapshot appends the snapshot format's non-grid prefix —
// version, dimensions, draw state, title, synchronized counters and the
// scrollback limit — without any cell rows. With a warmed buffer the
// encode performs no heap allocations.
func (f *Framebuffer) AppendMetaSnapshot(buf []byte) []byte {
	return f.appendSnapshotMeta(buf)
}

// ApplyMetaSnapshot decodes an AppendMetaSnapshot serialization into f,
// whose dimensions must match the encoded ones (the journal only emits
// deltas while the screen size is unchanged). It returns the unconsumed
// remainder of data.
func (f *Framebuffer) ApplyMetaSnapshot(data []byte) ([]byte, error) {
	r := binio.NewReader(data)
	ver, ok := r.Byte()
	if !ok || ver != snapshotVersion {
		return nil, ErrBadSnapshot
	}
	w, ok := r.BoundedUvarint(snapMaxDim)
	if !ok || int(w) != f.W {
		return nil, ErrBadSnapshot
	}
	h, ok := r.BoundedUvarint(snapMaxDim)
	if !ok || int(h) != f.H {
		return nil, ErrBadSnapshot
	}
	if !decodeSnapshotMeta(&r, f) {
		return nil, ErrBadSnapshot
	}
	return r.Rest(), nil
}

// RowGen returns the generation number of grid row i. The journal records
// generations at flush time and compares them on the next flush to find
// the rows a delta record must carry.
func (f *Framebuffer) RowGen(i int) uint64 { return f.rows[i].gen }

// AppendRowSnapshot appends the RLE serialization of grid row i — the
// same layout AppendSnapshot uses for each row of the grid.
func (f *Framebuffer) AppendRowSnapshot(buf []byte, i int) []byte {
	return appendRow(buf, f.rows[i].Cells)
}

// ApplyRowSnapshot decodes one RLE row into grid row i, replacing it with
// a fresh private row at a new generation, and returns the unconsumed
// remainder of data.
func (f *Framebuffer) ApplyRowSnapshot(data []byte, i int) ([]byte, error) {
	r := binio.NewReader(data)
	row := &Row{Cells: make([]Cell, f.W), gen: nextGen()}
	if !decodeRow(&r, row.Cells) {
		return nil, ErrBadSnapshot
	}
	f.rows[i] = row
	return r.Rest(), nil
}
