package terminal

import (
	"fmt"
	"testing"
)

// These benchmarks model the SSP sender's per-tick hot path on an 80×24
// screen: mutate the live emulator, diff it against the previous snapshot
// with a long-lived FrameWriter (as the statesync layer does), and take a
// new snapshot (Framebuffer.Clone) for the sent-state history. They are
// the repo's perf regression guard for the copy-on-write snapshot /
// zero-allocation diff work.

func prefilledEmulator(w, h int) *Emulator {
	emu := NewEmulator(w, h)
	for i := 0; i < h-1; i++ {
		emu.WriteString(fmt.Sprintf("%2d: the quick brown fox jumps over the lazy dog\r\n", i))
	}
	emu.WriteString("$ ")
	return emu
}

// BenchmarkSnapshotDiffTyping is the paper's dominant interactive
// workload: one keystroke per send interval.
func BenchmarkSnapshotDiffTyping(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	prev := emu.Framebuffer().Clone()
	keys := []byte("kernel make -j8 && ./run --fast ")
	reset := []byte("\r$ \x1b[K")
	var fw FrameWriter
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emu.Write(keys[i%len(keys) : i%len(keys)+1])
		if i%len(keys) == len(keys)-1 {
			emu.Write(reset)
		}
		buf = fw.AppendFrame(buf[:0], true, prev, emu.Framebuffer())
		prev = emu.Framebuffer().Clone()
	}
	benchSink = buf
}

// BenchmarkSnapshotDiffScrollFlood is the "cat a big file" workload: every
// tick scrolls the screen by several lines.
func BenchmarkSnapshotDiffScrollFlood(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	prev := emu.Framebuffer().Clone()
	lines := make([][]byte, 16)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("flood line %d: lorem ipsum dolor sit amet consectetur\r\n", i))
	}
	var fw FrameWriter
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			emu.Write(lines[(i*4+j)%len(lines)])
		}
		buf = fw.AppendFrame(buf[:0], true, prev, emu.Framebuffer())
		prev = emu.Framebuffer().Clone()
	}
	benchSink = buf
}

// BenchmarkSnapshotDiffFullRepaint measures a fresh client attach: the
// whole screen painted from blank.
func BenchmarkSnapshotDiffFullRepaint(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	var fw FrameWriter
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = fw.AppendFrame(buf[:0], false, nil, emu.Framebuffer())
	}
	benchSink = buf
}

// BenchmarkSnapshotDiffResize alternates window sizes, forcing the
// size-change full-repaint path plus the grid reshape.
func BenchmarkSnapshotDiffResize(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	var fw FrameWriter
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			emu.Resize(100, 30)
		} else {
			emu.Resize(80, 24)
		}
		buf = fw.AppendFrame(buf[:0], false, nil, emu.Framebuffer())
	}
	benchSink = buf
}

// BenchmarkSnapshotClone isolates the per-send snapshot cost.
func BenchmarkSnapshotClone(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCloneSink = emu.Framebuffer().Clone()
	}
}

// BenchmarkSnapshotEqualIdle isolates the sender's idle-tick comparison:
// the live state against an identical snapshot (calculateTimers performs
// up to three of these per tick).
func BenchmarkSnapshotEqualIdle(b *testing.B) {
	emu := prefilledEmulator(80, 24)
	snap := emu.Framebuffer().Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !emu.Framebuffer().Equal(snap) {
			b.Fatal("states diverged")
		}
	}
}

var (
	benchSink      []byte
	benchCloneSink *Framebuffer
)
