package terminal

import (
	"fmt"
	"strings"
	"testing"
)

func emu(w, h int) *Emulator { return NewEmulator(w, h) }

func cursor(t *testing.T, e *Emulator, row, col int) {
	t.Helper()
	ds := e.Framebuffer().DS
	if ds.CursorRow != row || ds.CursorCol != col {
		t.Fatalf("cursor at (%d,%d), want (%d,%d)", ds.CursorRow, ds.CursorCol, row, col)
	}
}

func rowText(t *testing.T, e *Emulator, row int, want string) {
	t.Helper()
	got := strings.TrimRight(e.Framebuffer().Text(row), " ")
	if got != want {
		t.Fatalf("row %d = %q, want %q", row, got, want)
	}
}

func TestPlainPrinting(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("hello, world")
	rowText(t, e, 0, "hello, world")
	cursor(t, e, 0, 12)
}

func TestCRLF(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("one\r\ntwo\r\nthree")
	rowText(t, e, 0, "one")
	rowText(t, e, 1, "two")
	rowText(t, e, 2, "three")
	cursor(t, e, 2, 5)
}

func TestBareLFKeepsColumn(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("abc\ndef")
	rowText(t, e, 0, "abc")
	rowText(t, e, 1, "   def")
}

func TestAutoWrap(t *testing.T) {
	e := emu(10, 5)
	e.WriteString("0123456789AB")
	rowText(t, e, 0, "0123456789")
	rowText(t, e, 1, "AB")
	cursor(t, e, 1, 2)
	if !e.Framebuffer().Row(0).Cells[9].Wrapped() {
		t.Fatal("soft-wrap flag not set on wrapped line")
	}
}

func TestDeferredWrapSemantics(t *testing.T) {
	// After printing into the last column the cursor stays put; a CR at
	// that point must not lose characters.
	e := emu(10, 5)
	e.WriteString("0123456789")
	cursor(t, e, 0, 9)
	e.WriteString("\r\nnext")
	rowText(t, e, 0, "0123456789")
	rowText(t, e, 1, "next")
}

func TestAutoWrapDisabled(t *testing.T) {
	e := emu(10, 5)
	e.WriteString("\x1b[?7l0123456789XYZ")
	rowText(t, e, 0, "012345678Z")
	cursor(t, e, 0, 9)
}

func TestScrollAtBottom(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("one\r\ntwo\r\nthree\r\nfour")
	rowText(t, e, 0, "two")
	rowText(t, e, 1, "three")
	rowText(t, e, 2, "four")
}

func TestCUPAndRelativeMoves(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("\x1b[10;20H")
	cursor(t, e, 9, 19)
	e.WriteString("\x1b[3A") // up 3
	cursor(t, e, 6, 19)
	e.WriteString("\x1b[2B") // down 2
	cursor(t, e, 8, 19)
	e.WriteString("\x1b[5C") // right 5
	cursor(t, e, 8, 24)
	e.WriteString("\x1b[10D") // left 10
	cursor(t, e, 8, 14)
	e.WriteString("\x1b[H")
	cursor(t, e, 0, 0)
}

func TestCursorClamping(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("\x1b[999;999H")
	cursor(t, e, 23, 79)
	e.WriteString("\x1b[99A\x1b[99D")
	cursor(t, e, 0, 0)
}

func TestEraseInLine(t *testing.T) {
	e := emu(20, 5)
	e.WriteString("abcdefghij\x1b[5G") // cursor to col 5 (0-based 4)
	e.WriteString("\x1b[K")
	rowText(t, e, 0, "abcd")
	e.WriteString("\x1b[2;1Hzzzzzz\x1b[3G\x1b[1K")
	rowText(t, e, 1, "   zzz")
	e.WriteString("\x1b[2K")
	rowText(t, e, 1, "")
}

func TestEraseInDisplay(t *testing.T) {
	e := emu(20, 4)
	e.WriteString("l1\r\nl2\r\nl3\r\nl4\x1b[2;1H\x1b[J")
	rowText(t, e, 0, "l1")
	rowText(t, e, 1, "")
	rowText(t, e, 2, "")
	rowText(t, e, 3, "")

	e = emu(20, 4)
	e.WriteString("aaaa\r\nbbbb\r\ncccc\r\ndddd\x1b[3;2H\x1b[1J")
	rowText(t, e, 0, "")
	rowText(t, e, 1, "")
	rowText(t, e, 2, "  cc") // cells 0-1 of row 3 erased (inclusive)
	rowText(t, e, 3, "dddd")

	e.WriteString("\x1b[2J")
	for i := 0; i < 4; i++ {
		rowText(t, e, i, "")
	}
}

func TestInsertDeleteChars(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("abcdef\x1b[1;3H\x1b[2@") // insert 2 blanks at col 3
	rowText(t, e, 0, "ab  cdef")
	e.WriteString("\x1b[1;1H\x1b[3P") // delete 3 at col 1
	rowText(t, e, 0, " cdef")
	e.WriteString("\x1b[2X") // erase 2 at cursor without shifting
	rowText(t, e, 0, "  def")
}

func TestInsertDeleteLines(t *testing.T) {
	e := emu(10, 4)
	e.WriteString("a\r\nb\r\nc\r\nd\x1b[2;1H\x1b[1L")
	rowText(t, e, 0, "a")
	rowText(t, e, 1, "")
	rowText(t, e, 2, "b")
	rowText(t, e, 3, "c")
	e.WriteString("\x1b[1;1H\x1b[2M")
	rowText(t, e, 0, "b")
	rowText(t, e, 1, "c")
	rowText(t, e, 2, "")
}

func TestScrollingRegion(t *testing.T) {
	e := emu(10, 5)
	e.WriteString("1\r\n2\r\n3\r\n4\r\n5")
	e.WriteString("\x1b[2;4r") // region rows 2..4 (1-based)
	cursor(t, e, 0, 0)         // DECSTBM homes the cursor
	e.WriteString("\x1b[4;1H\n")
	// LF at region bottom scrolls only rows 2..4.
	rowText(t, e, 0, "1")
	rowText(t, e, 1, "3")
	rowText(t, e, 2, "4")
	rowText(t, e, 3, "")
	rowText(t, e, 4, "5")
}

func TestOriginMode(t *testing.T) {
	e := emu(10, 6)
	e.WriteString("\x1b[2;5r\x1b[?6h")
	cursor(t, e, 1, 0) // home within region
	e.WriteString("\x1b[1;1HX")
	rowText(t, e, 1, "X")
	e.WriteString("\x1b[99;1H") // clamped to region bottom
	cursor(t, e, 4, 0)
	e.WriteString("\x1b[?6l")
	cursor(t, e, 0, 0)
}

func TestReverseIndexScrollsDown(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("a\r\nb\r\nc\x1b[1;1H\x1bM")
	rowText(t, e, 0, "")
	rowText(t, e, 1, "a")
	rowText(t, e, 2, "b")
}

func TestSGRBoldColorReset(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("\x1b[1;31mhot\x1b[0m cold")
	c := e.Framebuffer().Cell(0, 0)
	if !c.Rend.Bold || c.Rend.Fg != PaletteColor(1) {
		t.Fatalf("rendition = %+v", c.Rend)
	}
	c = e.Framebuffer().Cell(0, 4)
	if c.Rend != SGRReset {
		t.Fatalf("post-reset rendition = %+v", c.Rend)
	}
}

func TestSGR256AndTruecolor(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("\x1b[38;5;196mX\x1b[48;2;10;20;30mY")
	if got := e.Framebuffer().Cell(0, 0).Rend.Fg; got != PaletteColor(196) {
		t.Fatalf("256-color fg = %v", got)
	}
	rend := e.Framebuffer().Cell(0, 1).Rend
	if r, g, b := rend.Bg.RGB(); !rend.Bg.IsRGB() || r != 10 || g != 20 || b != 30 {
		t.Fatalf("truecolor bg = %v", rend.Bg)
	}
}

func TestSGRBrightColors(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("\x1b[97;104mZ")
	rend := e.Framebuffer().Cell(0, 0).Rend
	if rend.Fg != PaletteColor(15) || rend.Bg != PaletteColor(12) {
		t.Fatalf("bright colors = %+v", rend)
	}
}

func TestTabStops(t *testing.T) {
	e := emu(40, 3)
	e.WriteString("\tx")
	cursor(t, e, 0, 9)
	e.WriteString("\t\ty")
	cursor(t, e, 0, 25)
	// Custom tab stop.
	e.WriteString("\r\x1b[5C\x1bH\rab\t")
	cursor(t, e, 0, 5)
}

func TestTabClear(t *testing.T) {
	e := emu(40, 3)
	e.WriteString("\x1b[9G\x1b[g\r\t") // clear the stop at col 8
	cursor(t, e, 0, 16)
	e.WriteString("\x1b[3g\r\t") // clear all stops
	cursor(t, e, 0, 39)
}

func TestBackspaceAndBell(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("abc\b\bX\a")
	rowText(t, e, 0, "aXc")
	if e.Framebuffer().BellCount != 1 {
		t.Fatalf("bell count = %d", e.Framebuffer().BellCount)
	}
}

func TestSaveRestoreCursor(t *testing.T) {
	e := emu(20, 5)
	e.WriteString("\x1b[3;7H\x1b[1m\x1b7\x1b[H\x1b[0mmoved\x1b8")
	cursor(t, e, 2, 6)
	if !e.Framebuffer().DS.Rend.Bold {
		t.Fatal("rendition not restored")
	}
}

func TestRIS(t *testing.T) {
	e := emu(20, 5)
	e.WriteString("junk\x1b[5;5H\x1bc")
	rowText(t, e, 0, "")
	cursor(t, e, 0, 0)
}

func TestDECALN(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("\x1b#8")
	rowText(t, e, 0, "EEEEEEEEEE")
	rowText(t, e, 2, "EEEEEEEEEE")
}

func TestWindowTitleOSC(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("\x1b]2;my title\a")
	if e.Framebuffer().Title != "my title" {
		t.Fatalf("title = %q", e.Framebuffer().Title)
	}
	e.WriteString("\x1b]0;other\x1b\\") // ST terminator
	if e.Framebuffer().Title != "other" {
		t.Fatalf("title = %q", e.Framebuffer().Title)
	}
}

func TestUTF8AndWideChars(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("héllo")
	rowText(t, e, 0, "héllo")
	cursor(t, e, 0, 5)
	e.WriteString("\r\n日本")
	cursor(t, e, 1, 4)
	c := e.Framebuffer().Cell(1, 0)
	if !c.Wide || c.ContentsString() != "日" {
		t.Fatalf("wide cell = %+v", c)
	}
	if e.Framebuffer().Cell(1, 1).ContentsString() != "" {
		t.Fatal("continuation cell not blank")
	}
}

func TestWideCharWrapsEarly(t *testing.T) {
	e := emu(5, 3)
	e.WriteString("abcd日")
	rowText(t, e, 0, "abcd")
	c := e.Framebuffer().Cell(1, 0)
	if c.ContentsString() != "日" {
		t.Fatalf("wide char did not wrap: row1=%q", e.Framebuffer().Text(1))
	}
}

func TestCombiningCharacters(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("éx") // e + combining acute
	c := e.Framebuffer().Cell(0, 0)
	if c.ContentsString() != "é" {
		t.Fatalf("cell contents = %q", c.ContentsString())
	}
	cursor(t, e, 0, 2)
}

func TestInvalidUTF8ReplacementRune(t *testing.T) {
	e := emu(10, 3)
	e.Write([]byte{0xff, 'a', 0xc3, 'b'}) // bad byte; truncated sequence
	got := e.Framebuffer().Text(0)
	if !strings.HasPrefix(got, "�a�b") {
		t.Fatalf("row = %q", got)
	}
}

func TestInsertMode(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("abcdef\x1b[1;1H\x1b[4hXY\x1b[4l")
	rowText(t, e, 0, "XYabcdef")
}

func TestModes(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("\x1b[?1h\x1b[?25l\x1b[?2004h")
	ds := e.Framebuffer().DS
	if !ds.ApplicationCursorKeys || ds.CursorVisible || !ds.BracketedPaste {
		t.Fatalf("modes = %+v", ds)
	}
	e.WriteString("\x1b[?1l\x1b[?25h\x1b[?2004l")
	ds = e.Framebuffer().DS
	if ds.ApplicationCursorKeys || !ds.CursorVisible || ds.BracketedPaste {
		t.Fatalf("modes after reset = %+v", ds)
	}
}

func TestAltScreenApproximation(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("shell$\x1b[?1049h")
	rowText(t, e, 0, "") // entering alt screen clears
	e.WriteString("full-app\x1b[?1049l")
	rowText(t, e, 0, "") // leaving clears again
	cursor(t, e, 0, 6)   // cursor restored to saved position
}

func TestDSRReports(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("\x1b[5n")
	if got := string(e.TakeAnswerback()); got != "\x1b[0n" {
		t.Fatalf("status report = %q", got)
	}
	e.WriteString("\x1b[7;11H\x1b[6n")
	if got := string(e.TakeAnswerback()); got != "\x1b[7;11R" {
		t.Fatalf("CPR = %q", got)
	}
	if e.TakeAnswerback() != nil {
		t.Fatal("answerback not drained")
	}
}

func TestDeviceAttributes(t *testing.T) {
	e := emu(80, 24)
	e.WriteString("\x1b[c")
	if got := string(e.TakeAnswerback()); got != "\x1b[?62c" {
		t.Fatalf("DA = %q", got)
	}
}

func TestREP(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("x\x1b[4b")
	rowText(t, e, 0, "xxxxx")
}

func TestVPAAndCHA(t *testing.T) {
	e := emu(20, 10)
	e.WriteString("\x1b[5d\x1b[8G")
	cursor(t, e, 4, 7)
}

func TestCSIIgnoresGarbage(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("\x1b[>1;2;3mok\x1b[?9999hfine")
	rowText(t, e, 0, "okfine")
}

func TestCANAbortsSequence(t *testing.T) {
	e := emu(20, 3)
	e.Write([]byte{0x1b, '[', '3', 0x18, 'A'})
	rowText(t, e, 0, "A")
}

func TestStringSequencesSwallowed(t *testing.T) {
	e := emu(20, 3)
	e.WriteString("\x1bPsome dcs junk\x1b\\after")
	rowText(t, e, 0, "after")
	e.WriteString("\r\x1b_apc stuff\x1b\\ok")
	rowText(t, e, 0, "okter") // "ok" overprints the start of "after"
}

func TestResizePreservesContent(t *testing.T) {
	e := emu(20, 5)
	e.WriteString("keep me\r\nline2")
	e.Resize(30, 8)
	rowText(t, e, 0, "keep me")
	rowText(t, e, 1, "line2")
	fb := e.Framebuffer()
	if fb.W != 30 || fb.H != 8 || fb.DS.ScrollBottom != 7 {
		t.Fatalf("resize state: %dx%d bottom=%d", fb.W, fb.H, fb.DS.ScrollBottom)
	}
	e.Resize(5, 2)
	rowText(t, e, 0, "keep")
}

func TestCloneIndependence(t *testing.T) {
	e := emu(10, 3)
	e.WriteString("original")
	snap := e.Framebuffer().Clone()
	e.WriteString("\x1b[2J\x1b[Hchanged")
	if strings.TrimRight(snap.Text(0), " ") != "original" {
		t.Fatal("clone mutated by later writes")
	}
	if !snap.Equal(snap.Clone()) {
		t.Fatal("clone not equal to itself")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := emu(10, 3), emu(10, 3)
	if !a.Framebuffer().Equal(b.Framebuffer()) {
		t.Fatal("fresh framebuffers differ")
	}
	b.WriteString("x")
	if a.Framebuffer().Equal(b.Framebuffer()) {
		t.Fatal("content difference not detected")
	}
	a.WriteString("x")
	if !a.Framebuffer().Equal(b.Framebuffer()) {
		t.Fatal("identical content reported different")
	}
	b.WriteString("\x1b[?25l")
	if a.Framebuffer().Equal(b.Framebuffer()) {
		t.Fatal("cursor-visibility difference not detected")
	}
}

func TestScrollbackPerformanceGuard(t *testing.T) {
	// Flooding output ("cat large file") must not grow memory per line;
	// just sanity-check a large write completes and the screen holds the
	// tail.
	e := emu(80, 24)
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		sb.WriteString("line ")
		sb.WriteString(string(rune('0' + i%10)))
		sb.WriteString("\r\n")
	}
	e.WriteString(sb.String())
	rowText(t, e, 22, "line 9")
}

func TestKeyEncoding(t *testing.T) {
	if got := string(EncodeRune('a')); got != "a" {
		t.Fatalf("rune a = %q", got)
	}
	if got := string(EncodeRune('é')); got != "é" {
		t.Fatalf("rune é = %q", got)
	}
	if got := string(EncodeSpecial(KeyUp, false)); got != "\x1b[A" {
		t.Fatalf("up = %q", got)
	}
	if got := string(EncodeSpecial(KeyUp, true)); got != "\x1bOA" {
		t.Fatalf("app-mode up = %q", got)
	}
	if got := string(EncodeSpecial(KeyPageDown, false)); got != "\x1b[6~" {
		t.Fatalf("pgdn = %q", got)
	}
	if got := string(EncodeSpecial(KeyF5, false)); got != "\x1b[15~" {
		t.Fatalf("f5 = %q", got)
	}
	if EncodeSpecial(KeyNone, false) != nil {
		t.Fatal("KeyNone should encode to nothing")
	}
}

func TestRuneWidths(t *testing.T) {
	cases := []struct {
		r    rune
		want int
	}{
		{'a', 1}, {'é', 1}, {'日', 2}, {'한', 2}, {0x0301, 0}, {'🙂', 2}, {'ｱ', 1},
	}
	for _, c := range cases {
		if got := RuneWidth(c.r); got != c.want {
			t.Errorf("RuneWidth(%q) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestScrollbackCapturesHistory(t *testing.T) {
	e := emu(40, 4)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(e, "history line %d\r\n", i)
	}
	fb := e.Framebuffer()
	// 4 visible rows; with the cursor on the last row, 7 lines scrolled off.
	if fb.ScrollbackLines() != 7 {
		t.Fatalf("scrollback holds %d lines, want 7", fb.ScrollbackLines())
	}
	if got := strings.TrimRight(fb.ScrollbackText(0), " "); got != "history line 0" {
		t.Fatalf("oldest history = %q", got)
	}
	if got := strings.TrimRight(fb.ScrollbackText(6), " "); got != "history line 6" {
		t.Fatalf("newest history = %q", got)
	}
}

func TestScrollbackLimit(t *testing.T) {
	e := emu(40, 3)
	e.Framebuffer().SetScrollbackLimit(5)
	for i := 0; i < 50; i++ {
		fmt.Fprintf(e, "line %d\r\n", i)
	}
	fb := e.Framebuffer()
	if fb.ScrollbackLines() != 5 {
		t.Fatalf("limit not enforced: %d", fb.ScrollbackLines())
	}
	// Keeps the newest history.
	if got := strings.TrimRight(fb.ScrollbackText(4), " "); got != "line 47" {
		t.Fatalf("newest retained = %q", got)
	}
	fb.SetScrollbackLimit(-1)
	e.WriteString("more\r\nmore\r\n")
	if fb.ScrollbackLines() != 0 {
		t.Fatal("disabled scrollback still collecting")
	}
}

func TestScrollbackExcludesRegionScrolls(t *testing.T) {
	e := emu(40, 10)
	e.WriteString("\x1b[3;7r") // partial scrolling region
	e.WriteString("\x1b[7;1H\n\n\n")
	if e.Framebuffer().ScrollbackLines() != 0 {
		t.Fatal("region-internal scroll leaked into history")
	}
}
