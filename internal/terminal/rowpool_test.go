package terminal

import (
	"fmt"
	"testing"
)

// fillRow writes distinguishable junk into row i so reuse bugs surface as
// visible content.
func fillRow(f *Framebuffer, i int, tag byte) {
	r := f.Row(i)
	for c := range r.Cells {
		r.Cells[c] = Cell{Rend: Renditions{Bold: true}}
		r.Cells[c].SetRune(rune('A' + tag%26))
	}
	r.Touch()
}

func TestScrollFloodAllocationFreeWithPooledRows(t *testing.T) {
	// With scrollback disabled (the sessiond daemon's configuration),
	// rows leaving the top are recycled into the rows a scroll vacates, so
	// a scroll flood allocates nothing.
	f := NewFramebuffer(80, 24)
	f.SetScrollbackLimit(-1)
	for i := 0; i < 4; i++ {
		f.Scroll(1)
	}
	allocs := testing.AllocsPerRun(200, func() {
		fillRow(f, 23, 7) // dirty the bottom line like a flood does
		f.Scroll(1)
	})
	if allocs > 0 {
		t.Fatalf("scroll flood allocates %.1f per line with pooling, want 0", allocs)
	}
}

func TestRegionScrollReusesDiscardedRows(t *testing.T) {
	// A scroll inside a region (editors, pagers) discards the rows leaving
	// the region; vacated lines must reuse them without allocating.
	f := NewFramebuffer(80, 24)
	f.SetScrollingRegion(5, 18)
	for i := 0; i < 4; i++ {
		f.Scroll(1)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.Scroll(1)
		f.Scroll(-1)
	})
	if allocs > 0 {
		t.Fatalf("region scroll allocates %.1f per scroll with pooling, want 0", allocs)
	}
}

func TestPooledRowsAreFullyReset(t *testing.T) {
	f := NewFramebuffer(20, 6)
	f.SetScrollbackLimit(-1)
	for i := 0; i < f.H; i++ {
		fillRow(f, i, byte(i))
	}
	f.DS.Rend = Renditions{Bg: Color(42)}
	f.Scroll(3) // discards 3 junk rows, vacates 3 lines from the pool
	f.Scroll(3) // vacated lines now certainly come from the pool
	want := newRow(f.W, Renditions{Bg: Color(42)})
	for i := 3; i < f.H; i++ {
		for c := 0; c < f.W; c++ {
			if got := *f.Peek(i, c); got != want.Cells[c] {
				t.Fatalf("row %d cell %d = %+v, want blank bg=42", i, c, got)
			}
		}
	}
	// Generations must be fresh: no vacated row may claim equality-by-gen
	// with any other row.
	seen := map[uint64]int{}
	for i := 0; i < f.H; i++ {
		g := f.rows[i].Gen()
		if j, dup := seen[g]; dup {
			t.Fatalf("rows %d and %d share generation %d", j, i, g)
		}
		seen[g] = i
	}
}

func TestPoolingPreservesSnapshots(t *testing.T) {
	// Rows shared with a snapshot must never enter the pool: scrolling
	// after a Clone may not disturb what the snapshot renders.
	f := NewFramebuffer(40, 10)
	f.SetScrollbackLimit(-1)
	for i := 0; i < f.H; i++ {
		fillRow(f, i, byte(i))
	}
	snap := f.Clone()
	var want []string
	for i := 0; i < snap.H; i++ {
		want = append(want, snap.Text(i))
	}
	for round := 0; round < 30; round++ {
		fillRow(f, f.H-1, byte(round))
		f.Scroll(1)
		f.Scroll(-2)
		f.Scroll(1)
	}
	for i := 0; i < snap.H; i++ {
		if got := snap.Text(i); got != want[i] {
			t.Fatalf("snapshot row %d corrupted by pooled scrolls:\n got %q\nwant %q", i, got, want[i])
		}
	}
}

func TestPoolClearedOnResize(t *testing.T) {
	f := NewFramebuffer(30, 8)
	f.SetScrollbackLimit(-1)
	for i := 0; i < 6; i++ {
		f.Scroll(1) // stock the pool with 30-wide rows
	}
	f.Resize(50, 8)
	f.Scroll(2)
	for i := 0; i < f.H; i++ {
		if got := len(f.rows[i].Cells); got != 50 {
			t.Fatalf("row %d has %d cells after resize, want 50", i, got)
		}
	}
}

func TestScrollContentMatchesUnpooledOracle(t *testing.T) {
	// Property check: a framebuffer whose pool keeps engaging must stay
	// Equal to a deep-copied oracle driven through identical operations.
	f := NewFramebuffer(25, 9)
	f.SetScrollbackLimit(-1)
	oracle := NewFramebuffer(25, 9)
	oracle.SetScrollbackLimit(-1)
	ops := []func(fb *Framebuffer, step int){
		func(fb *Framebuffer, step int) { fb.Scroll(1 + step%3) },
		func(fb *Framebuffer, step int) { fb.Scroll(-(1 + step%2)) },
		func(fb *Framebuffer, step int) { fillRow(fb, step%fb.H, byte(step)) },
		func(fb *Framebuffer, step int) { fb.SetScrollingRegion(step%3, fb.H-1-step%2) },
		func(fb *Framebuffer, step int) { fb.DS.Rend = Renditions{Bg: Color(step % 5)} },
	}
	for step := 0; step < 500; step++ {
		op := ops[(step*7+step/11)%len(ops)]
		op(f, step)
		op(oracle, step)
		if step%50 == 0 {
			// Clone f occasionally so shared rows mix with pooled ones.
			_ = f.Clone()
		}
		if !f.Equal(oracle) {
			for i := 0; i < f.H; i++ {
				fmt.Printf("row %d: got %q want %q\n", i, f.Text(i), oracle.Text(i))
			}
			t.Fatalf("divergence from oracle at step %d", step)
		}
	}
}
