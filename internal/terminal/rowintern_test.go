package terminal

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRowInternSharingEquivalence pins the core interning contract: two
// screens showing identical content come to share canonical row storage,
// their serialized snapshots are byte-identical before and after
// interning, and copy-on-write isolates the first divergence.
func TestRowInternSharingEquivalence(t *testing.T) {
	paint := func(e *Emulator) {
		e.WriteString("\x1b[2J\x1b[H")
		for i := 0; i < 10; i++ {
			e.WriteString(fmt.Sprintf("\x1b[3%dmuser@host:~$ make test # line %d\x1b[0m\r\n", i%8, i))
		}
	}
	ea, eb := NewEmulator(80, 24), NewEmulator(80, 24)
	paint(ea)
	paint(eb)
	fa, fb := ea.Framebuffer(), eb.Framebuffer()

	beforeA := fa.AppendSnapshot(nil)
	beforeB := fb.AppendSnapshot(nil)
	if !bytes.Equal(beforeA, beforeB) {
		t.Fatal("identical paint produced different snapshots before interning")
	}
	fa.InternRows()
	adopted := fb.InternRows()
	if adopted == 0 {
		t.Fatal("second identical screen adopted zero canonical rows")
	}
	shared := 0
	for i := range fa.rows {
		ra, rb := fa.rows[i], fb.rows[i]
		if len(ra.Cells) > 0 && len(rb.Cells) > 0 && &ra.Cells[0] == &rb.Cells[0] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no row shares backing storage across the two screens")
	}
	if got := fa.AppendSnapshot(nil); !bytes.Equal(got, beforeA) {
		t.Fatal("interning changed screen A's snapshot bytes")
	}
	if got := fb.AppendSnapshot(nil); !bytes.Equal(got, beforeB) {
		t.Fatal("interning changed screen B's snapshot bytes")
	}

	// Copy-on-write isolation: mutating A must not leak into B's shared rows.
	ea.WriteString("\x1b[1;1HDIVERGED")
	if got := fb.AppendSnapshot(nil); !bytes.Equal(got, beforeB) {
		t.Fatal("write to screen A leaked into interned screen B")
	}
	if got := fa.AppendSnapshot(nil); bytes.Equal(got, beforeA) {
		t.Fatal("write to screen A did not change its own snapshot")
	}
}

// TestRowInternSteadyStateAllocFree guards the per-interval cost on an
// unchanged screen: InternRows memoizes by row generation, so the
// steady-state call is a per-row integer compare with zero allocations.
// (Runs under the CI alloc gate via the 'Alloc' name pattern.)
func TestRowInternSteadyStateAllocFree(t *testing.T) {
	e := NewEmulator(80, 24)
	for i := 0; i < 30; i++ {
		e.WriteString(fmt.Sprintf("steady state content row %d\r\n", i))
	}
	fb := e.Framebuffer()
	fb.InternRows() // first pass hashes and registers
	if n := testing.AllocsPerRun(200, func() { fb.InternRows() }); n != 0 {
		t.Fatalf("steady-state InternRows allocates %.1f times per run, want 0", n)
	}
}

// TestRowInternTableCapacityDegrades pins graceful degradation: past the
// byte cap the table refuses new canonical rows (ok=false, no error, no
// eviction) while rows already interned keep deduplicating. Uses a
// private table so the test cannot pollute the process-wide one.
func TestRowInternTableCapacityDegrades(t *testing.T) {
	tab := rowInternTable{buckets: make(map[uint64][][]Cell)}
	const rowLen = 8192 // 8192 cells per row: few rows reach the 16 MiB cap
	makeRow := func(i int) []Cell {
		cells := make([]Cell, rowLen)
		for j := range cells {
			cells[j].Rend.Fg = Color(i + 1)
		}
		return cells
	}
	budget := maxInternedRowBytes / (rowLen * cellBytes)
	sawFull := false
	var firstRejected int
	for i := 0; i < budget+8; i++ {
		if _, ok := tab.intern(makeRow(i)); !ok {
			sawFull = true
			firstRejected = i
			break
		}
	}
	if !sawFull {
		t.Fatalf("table accepted %d rows (%d bytes) without hitting the %d-byte cap",
			budget+8, (budget+8)*rowLen*cellBytes, maxInternedRowBytes)
	}
	if firstRejected < budget {
		t.Fatalf("table rejected row %d before the byte budget (%d rows) was spent", firstRejected, budget)
	}
	// Existing canonicals still serve hits: a COPY of an interned row (so
	// pointer identity cannot shortcut the lookup) resolves to the
	// original backing array at zero additional cost.
	probe := makeRow(0)
	bytesBefore := tab.bytes
	canon, ok := tab.intern(probe)
	if !ok {
		t.Fatal("full table stopped serving hits for already-canonical rows")
	}
	if &canon[0] == &probe[0] {
		t.Fatal("hit on a full table registered the probe instead of returning the canonical row")
	}
	if tab.bytes != bytesBefore {
		t.Fatal("hit on a full table grew the pinned byte count")
	}
	// And fresh content keeps being rejected — degradation is stable.
	if _, ok := tab.intern(makeRow(budget + 100)); ok {
		t.Fatal("full table accepted new content after the cap")
	}
}
