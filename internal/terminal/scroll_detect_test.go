package terminal

import (
	"fmt"
	"math/rand"
	"testing"
)

// detectScrollOracle is the seed implementation's O(H²) exhaustive scan
// (with its degenerate `bestMatches > 0` clause dropped: bestK > 0 already
// implies at least one match, and the half-the-survivors threshold is
// never satisfiable by zero matches for k < H). The O(H) rewrite must
// agree with it on every input.
func detectScrollOracle(last, f *Framebuffer) int {
	bestK, bestMatches := 0, 0
	for k := 1; k < f.H; k++ {
		m := 0
		for i := 0; i+k < f.H; i++ {
			if f.rows[i].gen == last.rows[i+k].gen {
				m++
			}
		}
		if m > bestMatches {
			bestMatches, bestK = m, k
		}
	}
	if bestK > 0 && bestMatches >= (f.H-bestK+1)/2 {
		return bestK
	}
	return 0
}

func checkScrollAgreement(t *testing.T, label string, last, f *Framebuffer) {
	t.Helper()
	var fw FrameWriter
	got := fw.detectScroll(last, f)
	want := detectScrollOracle(last, f)
	if got != want {
		t.Errorf("%s: detectScroll=%d, oracle=%d", label, got, want)
	}
}

// TestDetectScrollMatchesOracle drives both implementations over screens
// with scrolls interleaved with unrelated row changes — the case where
// scroll votes have to win against modified rows.
func TestDetectScrollMatchesOracle(t *testing.T) {
	newScreen := func() *Emulator {
		emu := NewEmulator(40, 16)
		for i := 0; i < 15; i++ {
			emu.WriteString(fmt.Sprintf("content row %d\r\n", i))
		}
		return emu
	}

	t.Run("pure-scroll", func(t *testing.T) {
		for k := 1; k <= 15; k++ {
			emu := newScreen()
			last := emu.Framebuffer().Clone()
			for i := 0; i < k; i++ {
				emu.WriteString(fmt.Sprintf("\x1b[16;1Hnew line %d\n", i))
			}
			checkScrollAgreement(t, fmt.Sprintf("scroll by %d", k), last, emu.Framebuffer())
		}
	})

	t.Run("no-change", func(t *testing.T) {
		emu := newScreen()
		last := emu.Framebuffer().Clone()
		checkScrollAgreement(t, "identical screens", last, emu.Framebuffer())
	})

	t.Run("interleaved-changes", func(t *testing.T) {
		for changed := 0; changed <= 16; changed += 2 {
			emu := newScreen()
			last := emu.Framebuffer().Clone()
			// Scroll by 3, then overwrite `changed` surviving rows so the
			// vote threshold is exercised on both sides of the boundary.
			emu.WriteString("\x1b[16;1H\n\n\n")
			for i := 0; i < changed && i < 13; i++ {
				emu.WriteString(fmt.Sprintf("\x1b[%d;1Hedited %d", i+1, i))
			}
			checkScrollAgreement(t, fmt.Sprintf("scroll 3 with %d edits", changed), last, emu.Framebuffer())
		}
	})

	t.Run("full-rewrite", func(t *testing.T) {
		emu := newScreen()
		last := emu.Framebuffer().Clone()
		emu.WriteString("\x1b[2J\x1b[H")
		for i := 0; i < 15; i++ {
			emu.WriteString(fmt.Sprintf("totally new %d\r\n", i))
		}
		checkScrollAgreement(t, "full rewrite", last, emu.Framebuffer())
	})

	t.Run("randomized", func(t *testing.T) {
		for seed := int64(0); seed < 50; seed++ {
			rng := rand.New(rand.NewSource(seed))
			emu := newScreen()
			last := emu.Framebuffer().Clone()
			// Random mixture of scrolls and row edits.
			for i, n := 0, rng.Intn(20); i < n; i++ {
				if rng.Intn(2) == 0 {
					emu.WriteString("\x1b[16;1H\n")
				} else {
					emu.WriteString(fmt.Sprintf("\x1b[%d;1Hr%d", rng.Intn(16)+1, i))
				}
			}
			checkScrollAgreement(t, fmt.Sprintf("seed %d", seed), last, emu.Framebuffer())
		}
	})

	t.Run("region-scroll", func(t *testing.T) {
		// A scroll inside a margin region moves only part of the screen;
		// both implementations must agree on whether that wins the vote.
		emu := newScreen()
		last := emu.Framebuffer().Clone()
		emu.WriteString("\x1b[4;12r\x1b[3S\x1b[r")
		checkScrollAgreement(t, "region scroll", last, emu.Framebuffer())
	})
}
