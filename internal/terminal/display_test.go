package terminal

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// applyFrame feeds a frame produced by NewFrame into an emulator holding
// base, returning the resulting framebuffer.
func applyFrame(base *Framebuffer, frame []byte) *Framebuffer {
	e := NewEmulator(base.W, base.H)
	e.SetFramebuffer(base.Clone())
	e.Write(frame)
	return e.Framebuffer()
}

func requireFrameTransforms(t *testing.T, last, target *Framebuffer) {
	t.Helper()
	frame := NewFrame(true, last, target)
	got := applyFrame(last, frame)
	if !got.Equal(target) {
		t.Fatalf("frame did not converge\nlast:\n%s\ntarget:\n%s\ngot:\n%s\nframe: %q",
			dump(last), dump(target), dump(got), frame)
	}
}

func dump(f *Framebuffer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cursor=(%d,%d) visible=%v title=%q bell=%d\n",
		f.DS.CursorRow, f.DS.CursorCol, f.DS.CursorVisible, f.Title, f.BellCount)
	for i := 0; i < f.H; i++ {
		fmt.Fprintf(&b, "|%s|\n", f.Text(i))
	}
	return b.String()
}

func fbFrom(w, h int, script string) *Framebuffer {
	e := NewEmulator(w, h)
	e.WriteString(script)
	return e.Framebuffer()
}

func TestFullRepaintReproducesScreen(t *testing.T) {
	target := fbFrom(40, 8, "hello\r\n\x1b[1;31mred bold\x1b[0m\r\nplain\x1b[5;10Hat 5,10")
	frame := NewFrame(false, nil, target)
	got := applyFrame(NewFramebuffer(40, 8), frame)
	if !got.Equal(target) {
		t.Fatalf("full repaint mismatch:\n%s\nvs\n%s", dump(got), dump(target))
	}
}

func TestIncrementalSingleCharEcho(t *testing.T) {
	last := fbFrom(40, 8, "prompt$ ")
	target := last.Clone()
	e := NewEmulator(40, 8)
	e.SetFramebuffer(target)
	e.WriteString("l")
	requireFrameTransforms(t, last, e.Framebuffer())
	// The incremental frame for one echoed character should be tiny.
	frame := NewFrame(true, last, e.Framebuffer())
	if len(frame) > 64 {
		t.Fatalf("single-character frame is %d bytes", len(frame))
	}
}

func TestIncrementalFrameSmallerThanRepaint(t *testing.T) {
	last := fbFrom(80, 24, strings.Repeat("the quick brown fox jumps over the lazy dog\r\n", 20))
	targetE := NewEmulator(80, 24)
	targetE.SetFramebuffer(last.Clone())
	targetE.WriteString("\x1b[12;1Hchanged line")
	target := targetE.Framebuffer()
	inc := NewFrame(true, last, target)
	full := NewFrame(false, nil, target)
	if len(inc) >= len(full)/4 {
		t.Fatalf("incremental frame %d bytes vs full %d; diff not minimal", len(inc), len(full))
	}
	requireFrameTransforms(t, last, target)
}

func TestFrameCarriesTitleBellModes(t *testing.T) {
	last := fbFrom(20, 4, "")
	e := NewEmulator(20, 4)
	e.SetFramebuffer(last.Clone())
	e.WriteString("\x1b]2;new title\a\a\a\x1b[?1h\x1b[?2004h\x1b[?25l")
	requireFrameTransforms(t, last, e.Framebuffer())
}

func TestScrollOptimization(t *testing.T) {
	e := NewEmulator(40, 10)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(e, "line %d\r\n", i)
	}
	last := e.Framebuffer().Clone()
	// Two more lines scroll the content up by two.
	e.WriteString("line 10\r\nline 11\r\n")
	target := e.Framebuffer()
	frame := NewFrame(true, last, target)
	requireFrameTransforms(t, last, target)
	// The frame should use the scroll escape and stay far smaller than a
	// repaint of ten lines.
	if !bytes.Contains(frame, []byte("S")) {
		t.Logf("frame: %q", frame)
		t.Fatal("scroll optimization not used")
	}
}

func TestCursorPositionSynchronized(t *testing.T) {
	last := fbFrom(40, 8, "abc")
	e := NewEmulator(40, 8)
	e.SetFramebuffer(last.Clone())
	e.WriteString("\x1b[6;20H")
	requireFrameTransforms(t, last, e.Framebuffer())
}

func TestWideCharsInFrames(t *testing.T) {
	last := fbFrom(20, 4, "")
	e := NewEmulator(20, 4)
	e.SetFramebuffer(last.Clone())
	e.WriteString("日本語 terminal\r\n漢字")
	requireFrameTransforms(t, last, e.Framebuffer())
}

func TestEraseToEndOptimization(t *testing.T) {
	last := fbFrom(60, 4, strings.Repeat("x", 60))
	e := NewEmulator(60, 4)
	e.SetFramebuffer(last.Clone())
	e.WriteString("\x1b[1;4H\x1b[K") // keep "xxx", clear the rest
	target := e.Framebuffer()
	frame := NewFrame(true, last, target)
	if len(frame) > 80 {
		t.Fatalf("erase-dominated frame is %d bytes: %q", len(frame), frame)
	}
	requireFrameTransforms(t, last, target)
}

func TestColorsSurviveRoundTrip(t *testing.T) {
	last := fbFrom(40, 6, "")
	e := NewEmulator(40, 6)
	e.SetFramebuffer(last.Clone())
	e.WriteString("\x1b[31;44;1malert\x1b[0m \x1b[38;5;200mpink\x1b[0m \x1b[38;2;1;2;3mrgb\x1b[4munder")
	requireFrameTransforms(t, last, e.Framebuffer())
}

// randomScript generates a random but plausible host-output script.
func randomScript(rng *rand.Rand, n int) string {
	var b strings.Builder
	words := []string{"ls", "cat file", "hello world", "日本語", "émigré", "x"}
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0:
			b.WriteString("\r\n")
		case 1:
			fmt.Fprintf(&b, "\x1b[%d;%dH", 1+rng.Intn(12), 1+rng.Intn(45))
		case 2:
			fmt.Fprintf(&b, "\x1b[%dm", []int{0, 1, 4, 7, 31, 32, 42, 91}[rng.Intn(8)])
		case 3:
			b.WriteString("\x1b[K")
		case 4:
			b.WriteString("\x1b[2J")
		case 5:
			fmt.Fprintf(&b, "\x1b[%dA", 1+rng.Intn(4))
		case 6:
			fmt.Fprintf(&b, "\x1b[%dL", 1+rng.Intn(3))
		case 7:
			fmt.Fprintf(&b, "\x1b[%dP", 1+rng.Intn(3))
		case 8:
			b.WriteString("\t")
		case 9:
			b.WriteString("\x1b[2;10r\x1b[5;1H\n\x1b[r")
		case 10:
			fmt.Fprintf(&b, "\x1b[%d@", 1+rng.Intn(3))
		case 11:
			b.WriteString("\b")
		default:
			b.WriteString(words[rng.Intn(len(words))])
		}
	}
	return b.String()
}

// TestFrameRoundTripProperty is the central display invariant: for random
// screen evolutions, applying NewFrame(last→target) to last always yields
// target. SSP's convergence depends on this.
func TestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 200; iter++ {
		w := 10 + rng.Intn(70)
		h := 3 + rng.Intn(21)
		e := NewEmulator(w, h)
		e.WriteString(randomScript(rng, 30))
		last := e.Framebuffer().Clone()
		e.WriteString(randomScript(rng, 20))
		target := e.Framebuffer()
		frame := NewFrame(true, last, target)
		got := applyFrame(last, frame)
		if !got.Equal(target) {
			t.Fatalf("iteration %d (%dx%d): frame diverged\nlast:\n%s\ntarget:\n%s\ngot:\n%s",
				iter, w, h, dump(last), dump(target), dump(got))
		}
		// And the full repaint must agree too.
		got2 := applyFrame(NewFramebuffer(w, h), NewFrame(false, nil, target))
		if !got2.Equal(target) {
			t.Fatalf("iteration %d: full repaint diverged", iter)
		}
	}
}

func TestFrameIdempotentWhenNoChange(t *testing.T) {
	f := fbFrom(40, 8, "static content\x1b[3;3H")
	frame := NewFrame(true, f, f)
	got := applyFrame(f, frame)
	if !got.Equal(f) {
		t.Fatal("no-change frame altered the screen")
	}
	if len(frame) > 48 {
		t.Fatalf("no-change frame is %d bytes: %q", len(frame), frame)
	}
}

func BenchmarkNewFrameOneLineChange(b *testing.B) {
	last := fbFrom(80, 24, strings.Repeat("the quick brown fox jumps over the lazy dog\r\n", 23))
	e := NewEmulator(80, 24)
	e.SetFramebuffer(last.Clone())
	e.WriteString("\x1b[12;1Hchanged")
	target := e.Framebuffer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFrame(true, last, target)
	}
}

func BenchmarkEmulatorThroughput(b *testing.B) {
	data := []byte(strings.Repeat("some ordinary terminal output line\r\n", 100))
	e := NewEmulator(80, 24)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Write(data)
	}
}
