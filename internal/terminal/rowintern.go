package terminal

import (
	"sync"
	"unsafe"
)

// Row-level screen interning (the memory-side counterpart of grapheme
// interning in intern.go): across a fleet of sessions the same lines
// appear over and over — shell prompts, login banners, and above all
// blank rows — so identical rows share one canonical []Cell backing
// array through a process-wide content-hashed table. Sharing rides the
// existing copy-on-write machinery: a row whose cells enter (or adopt
// from) the table is marked shared, so the first mutation materializes a
// private copy and the canonical storage is never written again.
//
// Interning is semantically invisible. Adoption preserves the row's
// generation number, so generation-based diffing, scroll detection and
// snapshot encoding produce byte-identical output with interning on or
// off; only resident memory changes.

// cellBytes is the in-memory footprint of one Cell, used by the
// resident-bytes accounting.
const cellBytes = int(unsafe.Sizeof(Cell{}))

const (
	// maxInternedRowBytes caps the canonical cell storage the table may
	// pin. Beyond it the table stops registering new rows (existing
	// canonicals keep deduplicating) — graceful degradation, never an
	// error.
	maxInternedRowBytes = 16 << 20
	// maxRowBucket bounds one hash bucket's candidate chain so a
	// pathological workload degrades to a miss instead of a linear scan.
	maxRowBucket = 8
)

// rowInternTable is the process-wide canonical row store. Sessions
// emulate concurrently under their own locks, so the table has its own;
// the read path (steady-state hit) takes only the read lock.
type rowInternTable struct {
	mu      sync.RWMutex
	buckets map[uint64][][]Cell
	bytes   int
	rows    int
}

var rowInterns = rowInternTable{buckets: make(map[uint64][][]Cell)}

// InternedRowStats reports the canonical row count and the bytes of cell
// storage the intern table pins (observability gauges).
func InternedRowStats() (rows, bytes int) {
	rowInterns.mu.RLock()
	defer rowInterns.mu.RUnlock()
	return rowInterns.rows, rowInterns.bytes
}

// hashRowCells is FNV-1a over the content words and renditions of a row.
func hashRowCells(cells []Cell) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h = (h ^ v&0xff) * prime64
		h = (h ^ v>>8&0xff) * prime64
		h = (h ^ v>>16&0xff) * prime64
		h = (h ^ v>>24&0xff) * prime64
	}
	for i := range cells {
		c := &cells[i]
		mix(uint64(c.content))
		mix(uint64(c.Rend.Fg))
		mix(uint64(c.Rend.Bg))
		var fl uint64
		if c.Rend.Bold {
			fl |= 1 << 0
		}
		if c.Rend.Faint {
			fl |= 1 << 1
		}
		if c.Rend.Italic {
			fl |= 1 << 2
		}
		if c.Rend.Underline {
			fl |= 1 << 3
		}
		if c.Rend.Blink {
			fl |= 1 << 4
		}
		if c.Rend.Inverse {
			fl |= 1 << 5
		}
		if c.Rend.Invisible {
			fl |= 1 << 6
		}
		if c.Wide {
			fl |= 1 << 7
		}
		if c.wrap {
			fl |= 1 << 8
		}
		mix(fl)
	}
	return h
}

// cellsIdentical is exact (bit-for-bit) row equality — stricter than
// Cell.Equal, which folds printed spaces into blanks. Interning must not
// change what the snapshot encoder emits, so only exactly equal rows may
// share storage.
func cellsIdentical(a, b []Cell) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup returns the canonical cells equal to cells under hash h, or nil.
func (t *rowInternTable) lookup(cells []Cell, h uint64) []Cell {
	for _, cand := range t.buckets[h] {
		if cellsIdentical(cells, cand) {
			return cand
		}
	}
	return nil
}

// intern returns the canonical backing array for cells, registering cells
// itself as canonical on first sight. ok is false when the table is at
// capacity and cells is not already interned — the caller leaves the row
// private.
func (t *rowInternTable) intern(cells []Cell) (canon []Cell, ok bool) {
	h := hashRowCells(cells)
	t.mu.RLock()
	canon = t.lookup(cells, h)
	t.mu.RUnlock()
	if canon != nil {
		return canon, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if canon = t.lookup(cells, h); canon != nil {
		return canon, true
	}
	if t.bytes+len(cells)*cellBytes > maxInternedRowBytes || len(t.buckets[h]) >= maxRowBucket {
		return nil, false
	}
	t.buckets[h] = append(t.buckets[h], cells)
	t.bytes += len(cells) * cellBytes
	t.rows++
	return cells, true
}

// InternRows deduplicates this screen's rows against the process-wide
// intern table and returns how many rows adopted already-canonical
// storage. Each row is examined at most once per generation (memoized in
// internGen), so on an unchanged screen the call is a per-row integer
// compare and performs no allocation. Adoption preserves the row's
// generation and marks it shared, so diffs, snapshots and frames are
// byte-identical to an uninterned run.
func (f *Framebuffer) InternRows() int {
	adopted := 0
	for i, r := range f.rows {
		if r.internGen == r.gen || len(r.Cells) == 0 {
			continue
		}
		canon, ok := rowInterns.intern(r.Cells)
		if !ok {
			// Table full: remember we looked so the row is not rehashed
			// every call while it stays unchanged.
			r.internGen = r.gen
			continue
		}
		if &canon[0] == &r.Cells[0] {
			// This row's storage is now the canonical copy other screens
			// may adopt; shared makes any future write copy first.
			r.shared = true
			r.interned = true
			r.internGen = r.gen
			continue
		}
		f.rows[i] = &Row{
			Cells:     canon,
			gen:       r.gen,
			shared:    true,
			interned:  true,
			internGen: r.gen,
		}
		adopted++
	}
	return adopted
}
