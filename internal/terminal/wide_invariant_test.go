package terminal

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkWideInvariant scans every cell of every row and asserts the
// invariant normalizeWide exists to maintain: a wide leader never sits in
// the last column, and the cell to its right is exactly the blank
// continuation carrying the leader's background. The windowed
// normalization (normalizeWideRange) repairs only a few columns around
// each localized edit, so this is the regression net proving the window
// bounds are right — a too-narrow window would leave a stale continuation
// or an orphaned leader somewhere outside it.
func checkWideInvariant(t *testing.T, f *Framebuffer, step int, op string) {
	t.Helper()
	for row := 0; row < f.H; row++ {
		r := f.Row(row)
		for col := 0; col < f.W; col++ {
			c := r.Cells[col]
			if !c.Wide {
				continue
			}
			if col == f.W-1 {
				t.Fatalf("step %d (%s): row %d col %d: wide leader in last column", step, op, row, col)
			}
			want := Cell{Rend: Renditions{Bg: c.Rend.Bg}}
			got := r.Cells[col+1]
			got.wrap = false // soft-wrap is line metadata, not content (see Cell.Equal)
			if got != want {
				t.Fatalf("step %d (%s): row %d col %d: wide leader without blank continuation (next=%+v)",
					step, op, row, col+1, r.Cells[col+1])
			}
			col++
		}
	}
}

// TestWideInvariantUnderRandomEdits hammers an emulator with a
// deterministic random mix of narrow prints, wide (CJK) prints, colored
// prints, cursor jumps, erases, and insert/delete edits — every shape of
// localized and structural mutation — verifying the wide-cell invariant
// after each operation. An odd width forces wide runes to straddle the
// wrap column regularly.
func TestWideInvariantUnderRandomEdits(t *testing.T) {
	const w, h = 11, 6
	e := emu(w, h)
	f := e.Framebuffer()
	rng := rand.New(rand.NewSource(41))

	wide := []rune("世界漢字テスト한글")
	narrow := []rune("abcXYZ019.")

	for step := 0; step < 4000; step++ {
		var op string
		switch rng.Intn(12) {
		case 0, 1, 2: // wide print, sometimes on a colored background
			if rng.Intn(3) == 0 {
				e.WriteString(fmt.Sprintf("\x1b[4%dm", 1+rng.Intn(6)))
			}
			e.WriteString(string(wide[rng.Intn(len(wide))]))
			op = "print-wide"
		case 3, 4, 5: // narrow print — overwriting a leader or continuation
			e.WriteString(string(narrow[rng.Intn(len(narrow))]))
			op = "print-narrow"
		case 6: // cursor jump anywhere, including the last column
			e.WriteString(fmt.Sprintf("\x1b[%d;%dH", 1+rng.Intn(h), 1+rng.Intn(w)))
			op = "cup"
		case 7: // erase in line (all three modes)
			e.WriteString(fmt.Sprintf("\x1b[%dK", rng.Intn(3)))
			op = "el"
		case 8: // erase characters at the cursor
			e.WriteString(fmt.Sprintf("\x1b[%dX", 1+rng.Intn(4)))
			op = "ech"
		case 9: // insert blanks, shifting the tail right through leaders
			e.WriteString(fmt.Sprintf("\x1b[%d@", 1+rng.Intn(3)))
			op = "ich"
		case 10: // delete cells, pulling the tail left through leaders
			e.WriteString(fmt.Sprintf("\x1b[%dP", 1+rng.Intn(3)))
			op = "dch"
		default: // newline / scroll pressure
			e.WriteString("\r\n")
			op = "crlf"
		}
		checkWideInvariant(t, f, step, op)
	}

	// Reset rendition so the emulator ends in a clean state, then one
	// final full sweep.
	e.WriteString("\x1b[0m")
	checkWideInvariant(t, f, 4000, "final")
}
