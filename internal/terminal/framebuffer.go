package terminal

import "sync/atomic"

// Row is one screen line. Its generation number changes on every
// modification and is preserved across clones, so two rows with equal gen
// are guaranteed identical — the renderer uses this to detect scrolls and
// skip unchanged lines without comparing cells.
//
// Rows are copy-on-write: Framebuffer.Clone shares *Row pointers between
// the original and the snapshot, marking each row shared. A shared row is
// immutable from then on — every mutation path first materializes a
// private copy via Framebuffer.writableRow — so snapshots are O(height)
// pointer copies instead of O(width×height) cell copies, which is what
// makes the SSP sender's per-send state history cheap.
type Row struct {
	Cells []Cell
	gen   uint64
	// shared marks a row reachable from more than one framebuffer (or
	// from a framebuffer and the scrollback of another). Once set it is
	// never cleared on this Row: a framebuffer that wants to write
	// replaces its pointer with a private copy instead.
	shared bool
	// interned marks a row whose Cells storage is (or backs) a canonical
	// entry in the process-wide row intern table (see rowintern.go).
	// Interned rows are always shared, so copy-on-write protects the
	// canonical storage from mutation.
	interned bool
	// internGen memoizes the generation this row last went through
	// InternRows, so steady-state interning of an unchanged screen is a
	// per-row integer compare instead of a content hash.
	internGen uint64
}

// rowGenCounter is global so generations stay unique across every
// framebuffer in the process; atomic because independent sessions (and
// parallel tests/benchmarks) emulate concurrently.
var rowGenCounter atomic.Uint64

func nextGen() uint64 {
	return rowGenCounter.Add(1)
}

func newRow(width int, bg Renditions) *Row {
	r := &Row{Cells: make([]Cell, width), gen: nextGen()}
	for i := range r.Cells {
		r.Cells[i].Reset(bg)
	}
	return r
}

// Gen returns the row's generation number.
func (r *Row) Gen() uint64 { return r.gen }

// Touch marks the row modified, invalidating generation-based equality.
// Overlay code uses it after writing cells directly.
func (r *Row) Touch() { r.touch() }

// touch marks the row modified.
func (r *Row) touch() { r.gen = nextGen() }

// clone deep-copies the row; the copy is private (not shared).
func (r *Row) clone() *Row {
	nr := &Row{Cells: make([]Cell, len(r.Cells)), gen: r.gen}
	copy(nr.Cells, r.Cells)
	return nr
}

func (r *Row) equal(o *Row) bool {
	if r == o || r.gen == o.gen {
		return true
	}
	if len(r.Cells) != len(o.Cells) {
		return false
	}
	for i := range r.Cells {
		if !r.Cells[i].Equal(&o.Cells[i]) {
			return false
		}
	}
	return true
}

// DrawState is the non-grid portion of terminal state: cursor, modes,
// scrolling region, tab stops and the active rendition.
type DrawState struct {
	CursorRow, CursorCol int
	// NextPrintWraps is the deferred-autowrap flag: set when a character
	// lands in the last column, so the *next* printed character wraps.
	NextPrintWraps bool

	Tabs []bool

	// ScrollTop/ScrollBottom delimit the scrolling region, inclusive.
	ScrollTop, ScrollBottom int

	Rend Renditions

	savedCursorSet        bool
	SavedCursorRow        int
	SavedCursorCol        int
	SavedRend             Renditions
	SavedOriginMode       bool
	InsertMode            bool
	OriginMode            bool
	AutoWrapMode          bool
	CursorVisible         bool
	ReverseVideo          bool
	ApplicationCursorKeys bool
	ApplicationKeypad     bool
	BracketedPaste        bool
}

func defaultTabs(width int) []bool {
	t := make([]bool, width)
	for i := 8; i < width; i += 8 {
		t[i] = true
	}
	return t
}

// Framebuffer is the complete screen state synchronized between server and
// client: the cell grid, draw state, window title, bell count and the
// "echo ack" the prediction engine relies on (§3.2).
type Framebuffer struct {
	W, H int
	rows []*Row
	DS   DrawState

	Title string
	// BellCount increments on BEL so the client can ring locally.
	BellCount uint64
	// EchoAck is the count of user-input bytes that have been presented
	// to the host application for at least the server's echo timeout
	// (50 ms), so their effects ought to be visible in this frame.
	EchoAck uint64

	// Scrollback holds lines scrolled off the top of the screen, oldest
	// first. It is local state — the paper lists scrollback browsing as
	// future work, and by construction the client's copy fills up
	// naturally as it applies the server's scroll diffs. It is excluded
	// from Equal (it is not synchronized).
	//
	// The history is structurally shared: sb points at an append-only
	// arena, and this framebuffer's visible window is sb.rows[sbOff:sbLen].
	// Clone copies the three words instead of the up-to-1000-entry pointer
	// slice. See pushScrollback for the sharing and compaction rules.
	sb            *scrollHistory
	sbOff, sbLen  int
	scrollbackMax int

	// freeRows is a free list of discarded rows available for reuse when a
	// scroll vacates lines. Only rows this framebuffer exclusively owns
	// enter it: never shared rows (a snapshot may still read them) and
	// never rows that passed through scrollback (a clone's history window
	// may still reference them). It is deliberately not carried over
	// by Clone. See recycleRow.
	freeRows []*Row
}

// DefaultScrollbackLimit bounds the local history.
const DefaultScrollbackLimit = 1000

// NewFramebuffer returns a blank w×h screen.
func NewFramebuffer(w, h int) *Framebuffer {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	f := &Framebuffer{W: w, H: h}
	f.rows = make([]*Row, h)
	for i := range f.rows {
		f.rows[i] = newRow(w, SGRReset)
	}
	f.DS = DrawState{
		Tabs:          defaultTabs(w),
		ScrollBottom:  h - 1,
		AutoWrapMode:  true,
		CursorVisible: true,
	}
	return f
}

// Clone snapshots the framebuffer in O(height): the grid is shared
// copy-on-write (both copies' rows become immutable-once-shared, and
// either side materializes a private row before writing), so the SSP
// sender's per-send snapshot costs pointer copies, not cell copies. Row
// generations are preserved, which keeps generation-based scroll
// detection and row skipping working across snapshots.
// Scrollback is carried over structurally: the clone references the same
// append-only history arena through its own (offset, length) window —
// scrolled-off rows are never mutated, and the state-sync receiver
// reconstructs each new state from a clone of the previous one, so
// history accumulates across the chain without ever being copied.
func (f *Framebuffer) Clone() *Framebuffer {
	nf := &Framebuffer{}
	nf.rows = make([]*Row, len(f.rows))
	nf.DS.Tabs = make([]bool, len(f.DS.Tabs))
	return f.CloneInto(nf)
}

// CloneInto is Clone reusing dst's storage (its rows slice and tab table)
// when the dimensions still match, falling back to a fresh Clone when they
// do not. The statesync layer feeds retired snapshots back through it, so
// the sender's steady-state snapshot performs no allocations at all. dst
// must not be the receiver of any outstanding references the caller still
// cares about; it returns the clone (dst itself, or a fresh framebuffer
// after a size change).
func (f *Framebuffer) CloneInto(dst *Framebuffer) *Framebuffer {
	if dst == nil || dst == f || len(dst.rows) != len(f.rows) || len(dst.DS.Tabs) != len(f.DS.Tabs) {
		return f.Clone()
	}
	rows, tabs := dst.rows, dst.DS.Tabs
	*dst = Framebuffer{
		W: f.W, H: f.H, DS: f.DS, Title: f.Title, BellCount: f.BellCount, EchoAck: f.EchoAck,
		sb: f.sb, sbOff: f.sbOff, sbLen: f.sbLen, scrollbackMax: f.scrollbackMax,
	}
	copy(tabs, f.DS.Tabs)
	dst.DS.Tabs = tabs
	for i, r := range f.rows {
		r.shared = true
		rows[i] = r
	}
	dst.rows = rows
	return dst
}

// Equal reports whether two framebuffers render identically and carry the
// same synchronized metadata.
func (f *Framebuffer) Equal(o *Framebuffer) bool {
	if f.W != o.W || f.H != o.H || f.Title != o.Title ||
		f.BellCount != o.BellCount || f.EchoAck != o.EchoAck {
		return false
	}
	if f.DS.CursorRow != o.DS.CursorRow || f.DS.CursorCol != o.DS.CursorCol ||
		f.DS.CursorVisible != o.DS.CursorVisible ||
		f.DS.ReverseVideo != o.DS.ReverseVideo ||
		f.DS.ApplicationCursorKeys != o.DS.ApplicationCursorKeys ||
		f.DS.BracketedPaste != o.DS.BracketedPaste {
		return false
	}
	for i := range f.rows {
		if !f.rows[i].equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// writableRow returns row i, first materializing a private copy if the
// row is shared with a snapshot. Every mutation of row contents must go
// through it (directly or via Row/Cell) to preserve the copy-on-write
// invariant that shared rows are immutable.
func (f *Framebuffer) writableRow(i int) *Row {
	r := f.rows[i]
	if r.shared {
		r = r.clone()
		f.rows[i] = r
	}
	return r
}

// Row returns row i (0-based), materialized for writing: callers (the
// overlay engine, for instance) mutate cells through it and then Touch it.
// Read-only callers use Peek instead to avoid the copy.
func (f *Framebuffer) Row(i int) *Row { return f.writableRow(i) }

// Cell returns the cell at (row, col), materialized for writing.
func (f *Framebuffer) Cell(row, col int) *Cell {
	return &f.writableRow(row).Cells[col]
}

// Peek returns the cell at (row, col) for reading only: it never
// materializes a shared row, so it is cheap and must not be written
// through.
func (f *Framebuffer) Peek(row, col int) *Cell {
	return &f.rows[row].Cells[col]
}

// Text returns the visible contents of row i as a string (for tests and
// examples).
func (f *Framebuffer) Text(i int) string {
	var s []byte
	for c := range f.rows[i].Cells {
		s = f.rows[i].Cells[c].appendContents(s)
	}
	return string(s)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MoveCursor positions the cursor, clamping to the screen (and to the
// scrolling region when origin mode is on). Coordinates are 0-based and
// absolute; origin-mode translation happens in the emulator.
func (f *Framebuffer) MoveCursor(row, col int) {
	f.DS.CursorRow = clamp(row, 0, f.H-1)
	f.DS.CursorCol = clamp(col, 0, f.W-1)
	f.DS.NextPrintWraps = false
}

// touchCursorRow marks the cursor's row modified.
func (f *Framebuffer) touchCursorRow() { f.writableRow(f.DS.CursorRow).touch() }

// eraseCells blanks cols [from, to) of row with the current background.
func (f *Framebuffer) eraseCells(row, from, to int) {
	from = clamp(from, 0, f.W)
	to = clamp(to, 0, f.W)
	if from >= to {
		return
	}
	r := f.writableRow(row)
	for i := from; i < to; i++ {
		r.Cells[i].Reset(f.DS.Rend)
	}
	// A leader just left of the blanked span may have lost its
	// continuation; nothing further out can have changed.
	f.normalizeWideRange(row, from-1, to+1)
	r.touch()
}

// normalizeWide repairs the wide-character invariant on a row after any
// cell-level mutation: a wide leader never sits in the last column, and
// its continuation cell is always a blank carrying the leader's
// background. The display renderer relies on this invariant — it lets a
// repaint of the leader deterministically regenerate the continuation, so
// screen diffs always converge.
func (f *Framebuffer) normalizeWide(row int) { f.normalizeWideRange(row, 0, f.W) }

// normalizeWideRange repairs the invariant over cols [from, to) only. A
// mutation that touches a bounded span of cells can only perturb leaders
// inside or immediately left of that span (the invariant is pairwise
// between a leader and its right neighbor), so localized edits — above
// all print, which writes one cell per call — normalize a small window
// instead of paying a full-row scan per character. Structural edits that
// shift whole row tails (insert/delete/scroll/resize) still scan the row.
func (f *Framebuffer) normalizeWideRange(row, from, to int) {
	r := f.writableRow(row)
	if from < 0 {
		from = 0
	}
	if to > f.W {
		to = f.W
	}
	for col := from; col < to; col++ {
		c := &r.Cells[col]
		if !c.Wide {
			continue
		}
		if col == f.W-1 {
			c.Reset(c.Rend)
			continue
		}
		want := Cell{Rend: Renditions{Bg: c.Rend.Bg}}
		if r.Cells[col+1] != want {
			r.Cells[col+1] = want
		}
		col++ // skip the continuation we just fixed
	}
}

// EraseInLine implements EL: mode 0 erases cursor→end, 1 start→cursor
// (inclusive), 2 the whole line.
func (f *Framebuffer) EraseInLine(mode int) {
	row, col := f.DS.CursorRow, f.DS.CursorCol
	switch mode {
	case 0:
		f.eraseCells(row, col, f.W)
	case 1:
		f.eraseCells(row, 0, col+1)
	case 2:
		f.eraseCells(row, 0, f.W)
	}
}

// EraseInDisplay implements ED: mode 0 erases cursor→end of screen, 1
// start→cursor, 2 whole screen.
func (f *Framebuffer) EraseInDisplay(mode int) {
	row := f.DS.CursorRow
	switch mode {
	case 0:
		f.EraseInLine(0)
		for i := row + 1; i < f.H; i++ {
			f.eraseCells(i, 0, f.W)
		}
	case 1:
		for i := 0; i < row; i++ {
			f.eraseCells(i, 0, f.W)
		}
		f.EraseInLine(1)
	case 2:
		for i := 0; i < f.H; i++ {
			f.eraseCells(i, 0, f.W)
		}
	}
}

// Scroll moves the scrolling region up by n lines (down when n < 0),
// filling vacated lines with the current background. Vacated lines reuse
// rows from the free list when the scroll discarded any this framebuffer
// exclusively owns, so scroll floods stop allocating per line.
func (f *Framebuffer) Scroll(n int) {
	top, bot := f.DS.ScrollTop, f.DS.ScrollBottom
	height := bot - top + 1
	if n > height {
		n = height
	}
	if -n > height {
		n = -height
	}
	switch {
	case n > 0:
		// Lines leaving the top of a full-width scroll enter the local
		// scrollback history; when history is disabled they are simply
		// discarded and can be recycled.
		if top == 0 {
			for i := 0; i < n; i++ {
				if !f.pushScrollback(f.rows[i]) {
					f.recycleRow(f.rows[i])
				}
			}
		} else {
			for i := top; i < top+n; i++ {
				f.recycleRow(f.rows[i])
			}
		}
		copy(f.rows[top:], f.rows[top+n:bot+1])
		for i := bot - n + 1; i <= bot; i++ {
			f.rows[i] = f.newRowPooled(f.DS.Rend)
		}
	case n < 0:
		n = -n
		for i := bot - n + 1; i <= bot; i++ {
			f.recycleRow(f.rows[i])
		}
		copy(f.rows[top+n:bot+1], f.rows[top:])
		for i := top; i < top+n; i++ {
			f.rows[i] = f.newRowPooled(f.DS.Rend)
		}
	}
}

// recycleRow offers a discarded row to the free list. Shared rows are
// refused (a snapshot or scrollback still reads them), as are rows of the
// wrong width; the list is bounded by the screen height.
func (f *Framebuffer) recycleRow(r *Row) {
	if r.shared || len(r.Cells) != f.W || len(f.freeRows) >= f.H {
		return
	}
	f.freeRows = append(f.freeRows, r)
}

// newRowPooled returns a blank row with background bg, reusing a recycled
// row when one is available.
func (f *Framebuffer) newRowPooled(bg Renditions) *Row {
	n := len(f.freeRows)
	if n == 0 {
		return newRow(f.W, bg)
	}
	r := f.freeRows[n-1]
	f.freeRows[n-1] = nil
	f.freeRows = f.freeRows[:n-1]
	for i := range r.Cells {
		r.Cells[i].Reset(bg)
	}
	r.gen = nextGen()
	return r
}

// InsertLines implements IL at the cursor row (within the scroll region).
func (f *Framebuffer) InsertLines(n int) {
	row := f.DS.CursorRow
	if row < f.DS.ScrollTop || row > f.DS.ScrollBottom {
		return
	}
	savedTop := f.DS.ScrollTop
	f.DS.ScrollTop = row
	f.Scroll(-n)
	f.DS.ScrollTop = savedTop
}

// DeleteLines implements DL at the cursor row (within the scroll region).
func (f *Framebuffer) DeleteLines(n int) {
	row := f.DS.CursorRow
	if row < f.DS.ScrollTop || row > f.DS.ScrollBottom {
		return
	}
	savedTop := f.DS.ScrollTop
	f.DS.ScrollTop = row
	f.Scroll(n)
	f.DS.ScrollTop = savedTop
}

// InsertCells implements ICH: shift cells right from the cursor, dropping
// overflow, blanking the gap.
func (f *Framebuffer) InsertCells(n int) {
	row, col := f.DS.CursorRow, f.DS.CursorCol
	if n > f.W-col {
		n = f.W - col
	}
	if n <= 0 {
		return
	}
	r := f.writableRow(row)
	copy(r.Cells[col+n:], r.Cells[col:f.W-n])
	for i := col; i < col+n; i++ {
		r.Cells[i].Reset(f.DS.Rend)
	}
	f.normalizeWide(row)
	r.touch()
}

// DeleteCells implements DCH: shift cells left into the cursor, blanking
// the tail.
func (f *Framebuffer) DeleteCells(n int) {
	row, col := f.DS.CursorRow, f.DS.CursorCol
	if n > f.W-col {
		n = f.W - col
	}
	if n <= 0 {
		return
	}
	r := f.writableRow(row)
	copy(r.Cells[col:], r.Cells[col+n:])
	for i := f.W - n; i < f.W; i++ {
		r.Cells[i].Reset(f.DS.Rend)
	}
	f.normalizeWide(row)
	r.touch()
}

// Resize changes the screen size, preserving as much content as possible
// (top-left anchored, like the reference implementation).
func (f *Framebuffer) Resize(w, h int) {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	if w == f.W && h == f.H {
		return
	}
	rows := make([]*Row, h)
	for i := 0; i < h; i++ {
		r := newRow(w, SGRReset)
		if i < f.H {
			src := f.rows[i]
			n := copy(r.Cells, src.Cells)
			// A surviving wide cell split at the boundary becomes blank.
			if n > 0 && r.Cells[n-1].Wide && n == w {
				r.Cells[n-1].Reset(SGRReset)
			}
		}
		rows[i] = r
	}
	f.rows = rows
	f.freeRows = nil // pooled rows have the old width
	f.W, f.H = w, h
	f.DS.Tabs = defaultTabs(w)
	f.DS.ScrollTop = 0
	f.DS.ScrollBottom = h - 1
	f.DS.CursorRow = clamp(f.DS.CursorRow, 0, h-1)
	f.DS.CursorCol = clamp(f.DS.CursorCol, 0, w-1)
	f.DS.NextPrintWraps = false
}

// SetScrollingRegion implements DECSTBM with 0-based inclusive bounds.
func (f *Framebuffer) SetScrollingRegion(top, bottom int) {
	top = clamp(top, 0, f.H-1)
	bottom = clamp(bottom, 0, f.H-1)
	if top >= bottom {
		// Invalid region resets to full screen, per DEC behavior.
		top, bottom = 0, f.H-1
	}
	f.DS.ScrollTop, f.DS.ScrollBottom = top, bottom
}

// SaveCursor implements DECSC.
func (f *Framebuffer) SaveCursor() {
	f.DS.savedCursorSet = true
	f.DS.SavedCursorRow = f.DS.CursorRow
	f.DS.SavedCursorCol = f.DS.CursorCol
	f.DS.SavedRend = f.DS.Rend
	f.DS.SavedOriginMode = f.DS.OriginMode
}

// RestoreCursor implements DECRC.
func (f *Framebuffer) RestoreCursor() {
	if !f.DS.savedCursorSet {
		f.MoveCursor(0, 0)
		f.DS.Rend = SGRReset
		return
	}
	f.DS.Rend = f.DS.SavedRend
	f.DS.OriginMode = f.DS.SavedOriginMode
	f.MoveCursor(f.DS.SavedCursorRow, f.DS.SavedCursorCol)
}

// Reset implements RIS: back to the power-on state at the current size.
// The scrollback *limit* survives — it is embedder configuration (sessiond
// disables history per session; see SetScrollbackLimit), not screen state
// — while the history itself is discarded like the rest of the screen.
func (f *Framebuffer) Reset() {
	max := f.scrollbackMax
	*f = *NewFramebuffer(f.W, f.H)
	f.scrollbackMax = max
}

// SetTab sets a tab stop at the cursor column.
func (f *Framebuffer) SetTab() { f.DS.Tabs[f.DS.CursorCol] = true }

// ClearTab clears a tab stop at the cursor column.
func (f *Framebuffer) ClearTab() { f.DS.Tabs[f.DS.CursorCol] = false }

// ClearAllTabs removes every tab stop.
func (f *Framebuffer) ClearAllTabs() {
	for i := range f.DS.Tabs {
		f.DS.Tabs[i] = false
	}
}

// NextTab returns the next tab stop strictly after col (or the last
// column).
func (f *Framebuffer) NextTab(col int) int {
	for i := col + 1; i < f.W; i++ {
		if f.DS.Tabs[i] {
			return i
		}
	}
	return f.W - 1
}

// PrevTab returns the previous tab stop strictly before col (or 0).
func (f *Framebuffer) PrevTab(col int) int {
	for i := col - 1; i > 0; i-- {
		if f.DS.Tabs[i] {
			return i
		}
	}
	return 0
}

// Ring increments the synchronized bell counter.
func (f *Framebuffer) Ring() { f.BellCount++ }

// scrollHistory is a shared, append-only scrollback arena. A framebuffer
// and its clones all point at the same arena; each sees its own window
// rows[sbOff:sbLen], so cloning deep history costs three word copies.
// Rows in the arena are never mutated (they left the screen for good),
// and arena entries below every window's sbLen are never overwritten —
// only the framebuffer sitting at the arena tip (sbLen == len(rows)) may
// append; anyone else forks first. That makes divergent clone chains
// (retransmit reconstruction applying different diffs to clones of the
// same state) safe: the second writer pays one O(window) copy.
type scrollHistory struct {
	rows []*Row
}

// effectiveScrollbackMax resolves the configured limit (0 = default,
// negative = disabled).
func (f *Framebuffer) effectiveScrollbackMax() int {
	if f.scrollbackMax == 0 {
		return DefaultScrollbackLimit
	}
	return f.scrollbackMax
}

// pushScrollback offers a row leaving the top of the screen to the local
// history. It reports whether the row was stored; a false return means the
// caller still owns the row (history disabled) and may recycle it. Rows
// trimmed from a full history are NOT returned for reuse: a clone's
// window may still reference them.
func (f *Framebuffer) pushScrollback(r *Row) bool {
	max := f.effectiveScrollbackMax()
	if max < 0 {
		return false // history disabled
	}
	if f.sb == nil {
		f.sb = &scrollHistory{}
	}
	// Fork when a sibling clone already extended the arena past our window
	// (we are not at the tip), or when the arena holds ≥max entries dead to
	// us (amortized compaction: one O(≤max) copy per max pushes, after
	// which appends run in place until the fresh arena's capacity is used).
	if f.sbLen != len(f.sb.rows) || f.sbOff >= max {
		f.forkScrollback(max)
	}
	f.sb.rows = append(f.sb.rows, r)
	f.sbLen++
	if f.sbLen-f.sbOff > max {
		f.sbOff++ // trim by window advance; the arena row stays for clones
	}
	return true
}

// forkScrollback moves this framebuffer onto a private arena holding just
// its visible window, with room to grow.
func (f *Framebuffer) forkScrollback(max int) {
	vis := f.sb.rows[f.sbOff:f.sbLen]
	ns := &scrollHistory{rows: make([]*Row, len(vis), len(vis)+max)}
	copy(ns.rows, vis)
	f.sb = ns
	f.sbOff = 0
	f.sbLen = len(ns.rows)
}

// SetScrollbackLimit bounds the local history; negative disables and
// discards it.
func (f *Framebuffer) SetScrollbackLimit(n int) {
	f.scrollbackMax = n
	switch {
	case n < 0:
		f.sb = nil
		f.sbOff, f.sbLen = 0, 0
	case f.sbLen-f.sbOff > n:
		f.sbOff = f.sbLen - n
	}
}

// ScrollbackLines reports how many history lines are held.
func (f *Framebuffer) ScrollbackLines() int { return f.sbLen - f.sbOff }

// ScrollbackText returns history line i (0 = oldest).
func (f *Framebuffer) ScrollbackText(i int) string {
	row := f.sb.rows[f.sbOff+i]
	var s []byte
	for c := range row.Cells {
		s = row.Cells[c].appendContents(s)
	}
	return string(s)
}

// MemStats reports this framebuffer's resident screen-state footprint for
// observability (sessiond exports the aggregate over all sessions).
type MemStats struct {
	// ScreenRows is the grid height; SharedScreenRows counts grid rows
	// currently shared copy-on-write with a snapshot.
	ScreenRows, SharedScreenRows int
	// PooledRows counts recycled rows waiting on the free list.
	PooledRows int
	// ScrollbackRows is the visible history window; ScrollbackArenaRows
	// counts the shared arena entries kept alive through this framebuffer
	// (≥ ScrollbackRows until compaction forks the window away).
	ScrollbackRows, ScrollbackArenaRows int
}

// MemStats returns the current footprint counters.
func (f *Framebuffer) MemStats() MemStats {
	m := MemStats{
		ScreenRows:     len(f.rows),
		PooledRows:     len(f.freeRows),
		ScrollbackRows: f.sbLen - f.sbOff,
	}
	for _, r := range f.rows {
		if r.shared {
			m.SharedScreenRows++
		}
	}
	if f.sb != nil {
		m.ScrollbackArenaRows = len(f.sb.rows)
	}
	return m
}

// AccumulateResident tallies the cell storage this framebuffer keeps
// resident, deduplicated against every backing array already counted in
// seen — so storage shared through row interning (or copy-on-write) is
// charged once fleet-wide, no matter how many screens reference it. It
// also counts this screen's interned rows. sessiond drives it across all
// sessions to compute resident_bytes_per_session.
func (f *Framebuffer) AccumulateResident(seen map[*Cell]struct{}) (bytes, internedRows int) {
	count := func(cells []Cell) {
		if len(cells) == 0 {
			return
		}
		key := &cells[0]
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		bytes += len(cells) * cellBytes
	}
	for _, r := range f.rows {
		count(r.Cells)
		if r.interned {
			internedRows++
		}
	}
	for _, r := range f.freeRows {
		count(r.Cells)
	}
	if f.sb != nil {
		// Charge the whole arena segment this framebuffer keeps alive,
		// not just the visible window.
		for _, r := range f.sb.rows {
			count(r.Cells)
		}
	}
	return bytes, internedRows
}
