package terminal

import (
	"fmt"
	"math/rand"
	"testing"
)

// scrollLines writes n numbered lines, scrolling the screen up n times.
func scrollLines(emu *Emulator, tag string, n int) {
	for i := 0; i < n; i++ {
		emu.WriteString(fmt.Sprintf("%s line %d\r\n", tag, i))
	}
}

// scrollbackOracle deep-copies a framebuffer's visible history text.
func scrollbackOracle(fb *Framebuffer) []string {
	out := make([]string, fb.ScrollbackLines())
	for i := range out {
		out[i] = fb.ScrollbackText(i)
	}
	return out
}

func requireScrollback(t *testing.T, fb *Framebuffer, want []string, label string) {
	t.Helper()
	if fb.ScrollbackLines() != len(want) {
		t.Fatalf("%s: %d history lines, want %d", label, fb.ScrollbackLines(), len(want))
	}
	for i := range want {
		if got := fb.ScrollbackText(i); got != want[i] {
			t.Fatalf("%s: history line %d = %q, want %q", label, i, got, want[i])
		}
	}
}

// TestScrollbackSnapshotIsolation proves the structural sharing is
// invisible: a clone's history window never moves, no matter how much the
// live side keeps scrolling (appends, trims, compaction forks).
func TestScrollbackSnapshotIsolation(t *testing.T) {
	emu := NewEmulator(40, 6)
	emu.Framebuffer().SetScrollbackLimit(20)
	scrollLines(emu, "base", 30) // history full and already trimmed

	snap := emu.Framebuffer().Clone()
	want := scrollbackOracle(snap)
	if len(want) != 20 {
		t.Fatalf("history = %d lines, want 20", len(want))
	}

	// Push far enough to force trims and several compaction forks.
	scrollLines(emu, "after", 100)
	requireScrollback(t, snap, want, "snapshot after live scrolling")

	// And the live side accumulated normally.
	live := emu.Framebuffer()
	if live.ScrollbackLines() != 20 {
		t.Fatalf("live history = %d lines, want 20", live.ScrollbackLines())
	}
	if got := live.ScrollbackText(19); got == want[19] {
		t.Fatalf("live history did not advance past snapshot: %q", got)
	}
}

// TestScrollbackDivergentClones exercises the receiver's reconstruction
// pattern: two clones of the same state each scroll independently; both
// histories must evolve correctly with no cross-corruption (the second
// writer forks off the shared arena tip).
func TestScrollbackDivergentClones(t *testing.T) {
	emu := NewEmulator(30, 5)
	scrollLines(emu, "common", 10)
	base := emu.Framebuffer()

	a := NewEmulatorWithFramebuffer(base.Clone())
	b := NewEmulatorWithFramebuffer(base.Clone())
	baseOracle := scrollbackOracle(base)

	scrollLines(a, "branch-a", 7)
	scrollLines(b, "branch-b", 4)

	// Ground truth: fresh emulators replaying each full stream without any
	// structural sharing.
	replay := func(tag string, n int) []string {
		o := NewEmulator(30, 5)
		scrollLines(o, "common", 10)
		scrollLines(o, tag, n)
		return scrollbackOracle(o.Framebuffer())
	}
	requireScrollback(t, a.Framebuffer(), replay("branch-a", 7), "branch A")
	requireScrollback(t, b.Framebuffer(), replay("branch-b", 4), "branch B")
	requireScrollback(t, base, baseOracle, "shared base")
}

// TestScrollbackSharingProperty is the randomized version: a chain of
// clones scrolling random amounts, every retained snapshot checked against
// a deep-copy oracle taken at its creation.
func TestScrollbackSharingProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		emu := NewEmulator(25, 4)
		emu.Framebuffer().SetScrollbackLimit(15)

		type snap struct {
			fb     *Framebuffer
			oracle []string
		}
		var snaps []snap
		for step := 0; step < 60; step++ {
			scrollLines(emu, fmt.Sprintf("s%d", step), 1+rng.Intn(5))
			if rng.Intn(3) == 0 {
				fb := emu.Framebuffer().Clone()
				snaps = append(snaps, snap{fb: fb, oracle: scrollbackOracle(fb)})
				if rng.Intn(4) == 0 {
					// Occasionally continue from a clone (receiver-style
					// divergence from a retained state).
					emu = NewEmulatorWithFramebuffer(fb.Clone())
				}
			}
			if len(snaps) > 8 {
				snaps = snaps[1:]
			}
		}
		for i, s := range snaps {
			requireScrollback(t, s.fb, s.oracle, fmt.Sprintf("seed %d snapshot %d", seed, i))
		}
	}
}

// TestScrollbackLimitChanges pins SetScrollbackLimit semantics on the
// shared representation: shrink trims the oldest lines, negative discards.
func TestScrollbackLimitChanges(t *testing.T) {
	emu := NewEmulator(20, 4)
	scrollLines(emu, "x", 15)
	fb := emu.Framebuffer()
	if fb.ScrollbackLines() != 12 { // 15 lines on a 4-high screen: 12 scrolled off
		t.Fatalf("history = %d, want 12", fb.ScrollbackLines())
	}
	keep := scrollbackOracle(fb)[7:] // the newest 5
	fb.SetScrollbackLimit(5)
	requireScrollback(t, fb, keep, "after shrink to 5")

	scrollLines(emu, "y", 3)
	if fb.ScrollbackLines() != 5 {
		t.Fatalf("history = %d after more scrolling, want 5", fb.ScrollbackLines())
	}

	fb.SetScrollbackLimit(-1)
	if fb.ScrollbackLines() != 0 {
		t.Fatal("negative limit did not discard history")
	}
}

// TestResetPreservesScrollbackLimit pins RIS semantics: ESC c discards the
// history but keeps the configured limit — a sessiond session with history
// disabled must not silently re-enable the 1000-line default when a user
// runs `reset`.
func TestResetPreservesScrollbackLimit(t *testing.T) {
	emu := NewEmulator(20, 4)
	emu.Framebuffer().SetScrollbackLimit(-1)
	scrollLines(emu, "pre", 10)
	emu.WriteString("\x1bc") // RIS
	scrollLines(emu, "post", 10)
	if got := emu.Framebuffer().ScrollbackLines(); got != 0 {
		t.Fatalf("history re-enabled by RIS: %d lines retained", got)
	}

	emu2 := NewEmulator(20, 4)
	emu2.Framebuffer().SetScrollbackLimit(5)
	scrollLines(emu2, "pre", 10)
	emu2.WriteString("\x1bc")
	if got := emu2.Framebuffer().ScrollbackLines(); got != 0 {
		t.Fatalf("RIS kept %d history lines, want 0", got)
	}
	scrollLines(emu2, "post", 20)
	if got := emu2.Framebuffer().ScrollbackLines(); got != 5 {
		t.Fatalf("custom limit lost across RIS: %d lines retained, want 5", got)
	}
}

// TestScrollbackArenaBounded proves compaction keeps the shared arena from
// growing without bound when the live screen scrolls forever.
func TestScrollbackArenaBounded(t *testing.T) {
	emu := NewEmulator(20, 4)
	emu.Framebuffer().SetScrollbackLimit(50)
	scrollLines(emu, "z", 5000)
	m := emu.Framebuffer().MemStats()
	if m.ScrollbackRows != 50 {
		t.Fatalf("visible history = %d, want 50", m.ScrollbackRows)
	}
	if m.ScrollbackArenaRows > 2*50 {
		t.Fatalf("arena holds %d rows after 5000 scrolls, want ≤ 100", m.ScrollbackArenaRows)
	}
}

// TestCloneIntoMatchesClone proves the storage-reusing clone is
// observationally identical to a fresh Clone, including scrollback and
// copy-on-write independence afterwards.
func TestCloneIntoMatchesClone(t *testing.T) {
	emu := NewEmulator(30, 6)
	scrollLines(emu, "pre", 12)
	emu.WriteString("\x1b[1;31mcolored\x1b[0m prompt$ ")
	live := emu.Framebuffer()

	// A retired shell with matching dimensions (arbitrary stale content).
	shell := NewFramebuffer(30, 6)
	shell.SetScrollbackLimit(123)
	NewEmulatorWithFramebuffer(shell).WriteString("stale junk\r\nmore junk")

	got := live.CloneInto(shell)
	if got != shell {
		t.Fatal("CloneInto did not reuse the matching shell")
	}
	if !got.Equal(live) {
		t.Fatal("CloneInto result differs from live state")
	}
	requireScrollback(t, got, scrollbackOracle(live), "CloneInto scrollback")

	// Independence both ways, exactly like Clone.
	oracle := takeOracle(got)
	emu.WriteString("\r\nnew live output after snapshot")
	oracle.verify(t, got, "CloneInto snapshot after live writes")

	// Dimension mismatch falls back to a fresh clone.
	small := NewFramebuffer(10, 3)
	got2 := live.CloneInto(small)
	if got2 == small {
		t.Fatal("CloneInto reused a mismatched shell")
	}
	if !got2.Equal(live) {
		t.Fatal("fallback clone differs from live state")
	}
}

// TestCloneWithDeepScrollbackCheapAlloc bounds Clone cost with a full
// history: sharing means the clone allocates the same three fixed-size
// blocks a scrollback-free clone does — nothing scales with history depth.
func TestCloneWithDeepScrollbackCheapAlloc(t *testing.T) {
	emu := deepScrollbackEmulator(80, 24)
	var sink *Framebuffer
	avg := testing.AllocsPerRun(100, func() {
		sink = emu.Framebuffer().Clone()
	})
	if avg > 3 {
		t.Errorf("deep-scrollback Clone allocates %v per run, want <= 3 (shell only)", avg)
	}
	_ = sink
}

// TestCloneIntoDeepScrollbackZeroAlloc is the headline guard: with shell
// reuse (what the statesync snapshot pool does), snapshotting a
// framebuffer carrying a full 1000-line history allocates nothing.
func TestCloneIntoDeepScrollbackZeroAlloc(t *testing.T) {
	emu := deepScrollbackEmulator(80, 24)
	live := emu.Framebuffer()
	shells := [2]*Framebuffer{live.Clone(), live.Clone()}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		shells[i&1] = live.CloneInto(shells[i&1])
		i++
	})
	if avg != 0 {
		t.Errorf("deep-scrollback CloneInto allocates %v per run, want 0", avg)
	}
}

// TestScrollbackPushSteadyStateCheap guards the amortized push cost: a
// scrolling tick with full history must not copy the window per line
// (the old per-push O(max) trim). Row allocation per vacated line remains
// (history retains the old rows), so the bound is a handful of allocs.
func TestScrollbackPushSteadyStateCheap(t *testing.T) {
	emu := deepScrollbackEmulator(80, 24)
	avg := testing.AllocsPerRun(500, func() {
		emu.WriteString("steady scroll line\r\n")
	})
	// newRow (2 allocs: Row + cells) per scrolled line, plus the amortized
	// arena growth/compaction share. The old representation copied the
	// 1000-entry window every push on top of this.
	if avg > 4 {
		t.Errorf("deep-scrollback scroll line costs %v allocs, want <= 4", avg)
	}
}
