package terminal

import (
	"bytes"
	"fmt"
)

// NewFrame computes the byte string that, when interpreted by a terminal
// currently displaying last, makes it display f. This is the server→client
// "logical diff" of the paper: only what changed is sent, and intermediate
// states are never represented. When initialized is false, last is ignored
// and a full repaint is produced.
//
// The output is interpretable both by real terminals (the client's actual
// display) and by this package's own Emulator (the client's synchronized
// copy of the server screen): round-tripping a frame through Emulator
// reproduces f exactly, which the test suite checks by property.
func NewFrame(initialized bool, last, f *Framebuffer) []byte {
	var out bytes.Buffer
	var cur frameState

	if !initialized || last == nil || last.W != f.W || last.H != f.H {
		// Full repaint from a pristine screen.
		out.WriteString("\x1b[0m\x1b[r\x1b[2J\x1b[H")
		last = NewFramebuffer(f.W, f.H)
		cur = frameState{row: 0, col: 0, rend: SGRReset}
	} else {
		cur = frameState{row: last.DS.CursorRow, col: last.DS.CursorCol, rend: SGRReset}
		// Establish a known rendition before painting.
		out.WriteString("\x1b[0m")
	}

	// Window title.
	if f.Title != last.Title {
		out.WriteString("\x1b]2;")
		out.WriteString(f.Title)
		out.WriteString("\a")
	}

	// Bell: ring once per increment.
	if f.BellCount > last.BellCount {
		for i := last.BellCount; i < f.BellCount; i++ {
			out.WriteByte(0x07)
		}
	}

	// Synchronized modes that affect the client's input handling or the
	// whole display.
	diffMode(&out, last.DS.ReverseVideo, f.DS.ReverseVideo, 5)
	diffMode(&out, last.DS.ApplicationCursorKeys, f.DS.ApplicationCursorKeys, 1)
	diffMode(&out, last.DS.BracketedPaste, f.DS.BracketedPaste, 2004)

	// Hide the cursor while painting to avoid flicker on real terminals.
	out.WriteString("\x1b[?25l")

	// Scroll optimization: if the screen content moved up by k lines
	// (the common "host printed at the bottom" case), scroll first so
	// the surviving lines need no repainting.
	lastRows := last.rows
	if k := detectScroll(last, f); k > 0 {
		fmt.Fprintf(&out, "\x1b[r\x1b[%dS", k)
		shifted := make([]*Row, f.H)
		copy(shifted, lastRows[k:])
		for i := f.H - k; i < f.H; i++ {
			shifted[i] = newRow(f.W, SGRReset)
		}
		lastRows = shifted
	}

	for y := 0; y < f.H; y++ {
		paintRow(&out, &cur, y, lastRows[y], f.rows[y], f.W)
	}

	// Final cursor position, rendition and visibility.
	fmt.Fprintf(&out, "\x1b[%d;%dH", f.DS.CursorRow+1, f.DS.CursorCol+1)
	out.WriteString(f.DS.Rend.ANSIString())
	if f.DS.CursorVisible {
		out.WriteString("\x1b[?25h")
	}
	return out.Bytes()
}

// frameState tracks the remote terminal's cursor and rendition as our
// emitted bytes move it.
type frameState struct {
	row, col int
	// colValid is false when the remote cursor position is unknown
	// (e.g. after printing into the last column).
	colInvalid bool
	rend       Renditions
}

func diffMode(out *bytes.Buffer, was, is bool, mode int) {
	if was == is {
		return
	}
	ch := byte('l')
	if is {
		ch = 'h'
	}
	fmt.Fprintf(out, "\x1b[?%d%c", mode, ch)
}

// detectScroll looks for a uniform upward shift: f's row i matching last's
// row i+k by generation. Returns the shift k (0 when none is worthwhile).
func detectScroll(last, f *Framebuffer) int {
	bestK, bestMatches := 0, 0
	for k := 1; k < f.H; k++ {
		m := 0
		for i := 0; i+k < f.H; i++ {
			if f.rows[i].gen == last.rows[i+k].gen {
				m++
			}
		}
		if m > bestMatches {
			bestMatches, bestK = m, k
		}
	}
	if bestK > 0 && bestMatches >= (f.H-bestK+1)/2 && bestMatches > 0 {
		return bestK
	}
	return 0
}

// paintRow emits the minimal update turning lastRow into row.
func paintRow(out *bytes.Buffer, cur *frameState, y int, lastRow, row *Row, width int) {
	if row.gen == lastRow.gen {
		return
	}
	// Find the extent of trailing blankness for the erase optimization.
	blankFrom := width
	for blankFrom > 0 {
		c := &row.Cells[blankFrom-1]
		if !c.IsBlank() {
			break
		}
		blankFrom--
	}

	x := 0
	for x < width {
		cell := &row.Cells[x]
		lastCell := &lastRow.Cells[x]
		if cell.Equal(lastCell) {
			x++
			continue
		}
		// Erase-to-end shortcut: everything from here on is blank in the
		// target row.
		if x >= blankFrom {
			moveTo(out, cur, y, x)
			setRend(out, cur, SGRReset)
			out.WriteString("\x1b[K")
			return
		}
		// A differing continuation cell of a wide character cannot be
		// painted directly; repaint its leader, which regenerates it.
		if cell.Contents == "" && x > 0 && row.Cells[x-1].Wide {
			x--
			cell = &row.Cells[x]
		}
		moveTo(out, cur, y, x)
		setRend(out, cur, cell.Rend)
		out.WriteString(cell.String())
		w := 1
		if cell.Wide {
			w = 2
		}
		if x+w >= width {
			// Wrote into the last column: remote pending-wrap state is
			// ambiguous, so force an absolute move next time.
			cur.colInvalid = true
			x = width
		} else {
			cur.col = x + w
			x += w
		}
	}
}

func moveTo(out *bytes.Buffer, cur *frameState, row, col int) {
	if !cur.colInvalid && cur.row == row && cur.col == col {
		return
	}
	fmt.Fprintf(out, "\x1b[%d;%dH", row+1, col+1)
	cur.row, cur.col, cur.colInvalid = row, col, false
}

func setRend(out *bytes.Buffer, cur *frameState, r Renditions) {
	if cur.rend == r {
		return
	}
	out.WriteString(r.ANSIString())
	cur.rend = r
}
