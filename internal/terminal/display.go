package terminal

import "strconv"

// NewFrame computes the byte string that, when interpreted by a terminal
// currently displaying last, makes it display f. This is the server→client
// "logical diff" of the paper: only what changed is sent, and intermediate
// states are never represented. When initialized is false, last is ignored
// and a full repaint is produced.
//
// The output is interpretable both by real terminals (the client's actual
// display) and by this package's own Emulator (the client's synchronized
// copy of the server screen): round-tripping a frame through Emulator
// reproduces f exactly, which the test suite checks by property.
//
// NewFrame allocates a fresh output buffer and scratch state per call; the
// steady-state senders use a reusable FrameWriter via AppendFrame instead,
// which produces identical bytes with zero heap allocations.
func NewFrame(initialized bool, last, f *Framebuffer) []byte {
	var w FrameWriter
	return w.AppendFrame(nil, initialized, last, f)
}

// FrameWriter renders screen diffs. It owns the scratch state the diff
// pipeline needs (scroll-detection tables and a blank baseline row), so a
// long-lived writer — one per SSP sender — reaches zero heap allocations
// per frame once warm. The zero value is ready to use. A FrameWriter is
// not safe for concurrent use.
type FrameWriter struct {
	// genIdx maps a row generation in `last` to its row index, turning
	// scroll detection into one O(height) pass. Generations are unique
	// within a framebuffer, so the map is exact.
	genIdx map[uint64]int
	// votes[k] counts rows supporting an upward scroll of k lines.
	votes []int
	// blank is the all-blank baseline row used for full repaints and for
	// lines a scroll brought on screen. Its generation is 0, which no
	// real row ever carries (the generation counter starts at 1), so it
	// never falsely matches. It is read-only by construction.
	blank *Row
}

// frameState tracks the remote terminal's cursor and rendition as our
// emitted bytes move it.
type frameState struct {
	row, col int
	// colValid is false when the remote cursor position is unknown
	// (e.g. after printing into the last column).
	colInvalid bool
	rend       Renditions
}

// blankRow returns the cached width-w blank baseline row.
func (w *FrameWriter) blankRow(width int) *Row {
	if w.blank == nil || len(w.blank.Cells) != width {
		w.blank = &Row{Cells: make([]Cell, width)}
	}
	return w.blank
}

// AppendFrame appends the frame bytes transforming last into f (see
// NewFrame) to buf and returns the extended buffer. Passing a buffer with
// spare capacity — typically the previous frame's, truncated to zero —
// makes the whole diff pipeline allocation-free in steady state.
func (w *FrameWriter) AppendFrame(buf []byte, initialized bool, last, f *Framebuffer) []byte {
	var cur frameState

	repaint := !initialized || last == nil || last.W != f.W || last.H != f.H
	blank := w.blankRow(f.W)

	// Synchronized metadata of the baseline screen: zero values when
	// repainting from scratch (a pristine terminal has no title, no
	// rung bells and all modes reset).
	var lastTitle string
	var lastBell uint64
	var lastReverse, lastAppCursor, lastBracketed bool

	if repaint {
		// Full repaint from a pristine screen.
		buf = append(buf, "\x1b[0m\x1b[r\x1b[2J\x1b[H"...)
		cur = frameState{row: 0, col: 0, rend: SGRReset}
	} else {
		lastTitle = last.Title
		lastBell = last.BellCount
		lastReverse = last.DS.ReverseVideo
		lastAppCursor = last.DS.ApplicationCursorKeys
		lastBracketed = last.DS.BracketedPaste
		cur = frameState{row: last.DS.CursorRow, col: last.DS.CursorCol, rend: SGRReset}
		// Establish a known rendition before painting.
		buf = append(buf, "\x1b[0m"...)
	}

	// Window title.
	if f.Title != lastTitle {
		buf = append(buf, "\x1b]2;"...)
		buf = append(buf, f.Title...)
		buf = append(buf, '\a')
	}

	// Bell: ring once per increment.
	if f.BellCount > lastBell {
		for i := lastBell; i < f.BellCount; i++ {
			buf = append(buf, 0x07)
		}
	}

	// Synchronized modes that affect the client's input handling or the
	// whole display.
	buf = diffMode(buf, lastReverse, f.DS.ReverseVideo, 5)
	buf = diffMode(buf, lastAppCursor, f.DS.ApplicationCursorKeys, 1)
	buf = diffMode(buf, lastBracketed, f.DS.BracketedPaste, 2004)

	// Hide the cursor while painting to avoid flicker on real terminals.
	buf = append(buf, "\x1b[?25l"...)

	// Scroll optimization: if the screen content moved up by k lines
	// (the common "host printed at the bottom" case), scroll first so
	// the surviving lines need no repainting.
	k := 0
	if !repaint {
		if k = w.detectScroll(last, f); k > 0 {
			buf = append(buf, "\x1b[r\x1b["...)
			buf = strconv.AppendUint(buf, uint64(k), 10)
			buf = append(buf, 'S')
		}
	}

	for y := 0; y < f.H; y++ {
		// The baseline for row y after scrolling by k: last's row y+k
		// while it exists, blank for the lines the scroll brought in
		// (and for every row of a full repaint).
		lastRow := blank
		if !repaint && y+k < f.H {
			lastRow = last.rows[y+k]
		}
		buf = paintRow(buf, &cur, y, lastRow, f.rows[y], f.W)
	}

	// Final cursor position, rendition and visibility.
	buf = appendMove(buf, f.DS.CursorRow, f.DS.CursorCol)
	buf = f.DS.Rend.appendANSI(buf)
	if f.DS.CursorVisible {
		buf = append(buf, "\x1b[?25h"...)
	}
	return buf
}

func diffMode(buf []byte, was, is bool, mode int) []byte {
	if was == is {
		return buf
	}
	ch := byte('l')
	if is {
		ch = 'h'
	}
	buf = append(buf, "\x1b[?"...)
	buf = strconv.AppendUint(buf, uint64(mode), 10)
	return append(buf, ch)
}

// detectScroll looks for a uniform upward shift: f's row i matching last's
// row i+k by generation. Returns the shift k (0 when none is worthwhile).
// One pass builds a generation→index table for last, a second tallies a
// vote for each matching pair, so the cost is O(height) rather than the
// O(height²) of comparing every (row, shift) combination.
func (w *FrameWriter) detectScroll(last, f *Framebuffer) int {
	h := f.H
	if w.genIdx == nil {
		w.genIdx = make(map[uint64]int, h)
	} else {
		clear(w.genIdx)
	}
	if cap(w.votes) < h {
		w.votes = make([]int, h)
	} else {
		w.votes = w.votes[:h]
		clear(w.votes)
	}
	for i, r := range last.rows {
		w.genIdx[r.gen] = i
	}
	for i, r := range f.rows {
		if j, ok := w.genIdx[r.gen]; ok && j > i {
			w.votes[j-i]++
		}
	}
	bestK, bestMatches := 0, 0
	for k := 1; k < h; k++ {
		if w.votes[k] > bestMatches {
			bestMatches, bestK = w.votes[k], k
		}
	}
	// A scroll is worthwhile when at least half the surviving lines move
	// with it. bestK > 0 already implies bestMatches ≥ 1 (a shift is only
	// recorded on a strict improvement over zero votes).
	if bestK > 0 && bestMatches >= (f.H-bestK+1)/2 {
		return bestK
	}
	return 0
}

// paintRow emits the minimal update turning lastRow into row.
func paintRow(buf []byte, cur *frameState, y int, lastRow, row *Row, width int) []byte {
	if row == lastRow || row.gen == lastRow.gen {
		return buf
	}
	// Find the extent of trailing blankness for the erase optimization.
	blankFrom := width
	for blankFrom > 0 {
		c := &row.Cells[blankFrom-1]
		if !c.IsBlank() {
			break
		}
		blankFrom--
	}

	x := 0
	for x < width {
		cell := &row.Cells[x]
		lastCell := &lastRow.Cells[x]
		if cell.Equal(lastCell) {
			x++
			continue
		}
		// Erase-to-end shortcut: everything from here on is blank in the
		// target row.
		if x >= blankFrom {
			buf = moveTo(buf, cur, y, x)
			buf = setRend(buf, cur, SGRReset)
			return append(buf, "\x1b[K"...)
		}
		// A differing continuation cell of a wide character cannot be
		// painted directly; repaint its leader, which regenerates it.
		if cell.ContentsEmpty() && x > 0 && row.Cells[x-1].Wide {
			x--
			cell = &row.Cells[x]
		}
		buf = moveTo(buf, cur, y, x)
		buf = setRend(buf, cur, cell.Rend)
		buf = cell.appendContents(buf)
		w := 1
		if cell.Wide {
			w = 2
		}
		if x+w >= width {
			// Wrote into the last column: remote pending-wrap state is
			// ambiguous, so force an absolute move next time.
			cur.colInvalid = true
			x = width
		} else {
			cur.col = x + w
			x += w
		}
	}
	return buf
}

// appendMove emits an absolute cursor move to (row, col), 0-based.
func appendMove(buf []byte, row, col int) []byte {
	buf = append(buf, "\x1b["...)
	buf = strconv.AppendUint(buf, uint64(row+1), 10)
	buf = append(buf, ';')
	buf = strconv.AppendUint(buf, uint64(col+1), 10)
	return append(buf, 'H')
}

func moveTo(buf []byte, cur *frameState, row, col int) []byte {
	if !cur.colInvalid && cur.row == row && cur.col == col {
		return buf
	}
	cur.row, cur.col, cur.colInvalid = row, col, false
	return appendMove(buf, row, col)
}

func setRend(buf []byte, cur *frameState, r Renditions) []byte {
	if cur.rend == r {
		return buf
	}
	cur.rend = r
	return r.appendANSI(buf)
}
