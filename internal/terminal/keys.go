package terminal

import "unicode/utf8"

// SpecialKey identifies a non-character key on the user's keyboard. The
// client encodes these to the byte sequences the host application expects,
// honoring the synchronized terminal modes (application cursor keys).
type SpecialKey int

// Special keys supported by the encoder.
const (
	KeyNone SpecialKey = iota
	KeyUp
	KeyDown
	KeyRight
	KeyLeft
	KeyHome
	KeyEnd
	KeyInsert
	KeyDelete
	KeyPageUp
	KeyPageDown
	KeyF1
	KeyF2
	KeyF3
	KeyF4
	KeyF5
	KeyF6
	KeyF7
	KeyF8
	KeyF9
	KeyF10
	KeyF11
	KeyF12
)

// EncodeRune encodes an ordinary character keystroke as the bytes sent to
// the host (UTF-8).
func EncodeRune(r rune) []byte {
	buf := make([]byte, 4)
	n := utf8.EncodeRune(buf, r)
	return buf[:n]
}

// EncodeSpecial encodes a special key. applicationCursor selects the DECCKM
// encoding (SS3) for the arrow and home/end keys, as synchronized from the
// server's terminal state.
func EncodeSpecial(k SpecialKey, applicationCursor bool) []byte {
	cursor := func(ch byte) []byte {
		if applicationCursor {
			return []byte{0x1b, 'O', ch}
		}
		return []byte{0x1b, '[', ch}
	}
	tilde := func(n string) []byte {
		return append(append([]byte{0x1b, '['}, n...), '~')
	}
	switch k {
	case KeyUp:
		return cursor('A')
	case KeyDown:
		return cursor('B')
	case KeyRight:
		return cursor('C')
	case KeyLeft:
		return cursor('D')
	case KeyHome:
		return cursor('H')
	case KeyEnd:
		return cursor('F')
	case KeyInsert:
		return tilde("2")
	case KeyDelete:
		return tilde("3")
	case KeyPageUp:
		return tilde("5")
	case KeyPageDown:
		return tilde("6")
	case KeyF1:
		return []byte{0x1b, 'O', 'P'}
	case KeyF2:
		return []byte{0x1b, 'O', 'Q'}
	case KeyF3:
		return []byte{0x1b, 'O', 'R'}
	case KeyF4:
		return []byte{0x1b, 'O', 'S'}
	case KeyF5:
		return tilde("15")
	case KeyF6:
		return tilde("17")
	case KeyF7:
		return tilde("18")
	case KeyF8:
		return tilde("19")
	case KeyF9:
		return tilde("20")
	case KeyF10:
		return tilde("21")
	case KeyF11:
		return tilde("23")
	case KeyF12:
		return tilde("24")
	}
	return nil
}
