package terminal

import (
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// This file implements the process-wide grapheme intern table behind the
// packed cell content word (see Cell). Cell contents are a uint32:
//
//   - 0 — blank (the old Contents == "")
//   - graphemeBit clear — an inline single rune (ASCII, CJK, lone emoji):
//     the overwhelming majority of printed cells, stored with no heap
//     reference at all
//   - graphemeBit set — an index into the intern table, used only for
//     multi-rune grapheme clusters (base + combining marks, ZWJ emoji)
//
// Interning is canonical — one cluster string maps to exactly one index —
// so cell equality everywhere (the diff hot path, snapshot comparison,
// prediction judgement) is a single integer compare. The table is
// append-only and never shrinks: distinct clusters a workload prints are
// few, and sharing them process-wide is the point (thousands of sessiond
// sessions printing the same accented letters share one entry).

// graphemeBit marks a packed content word as an intern-table index.
const graphemeBit uint32 = 1 << 31

// maxGraphemeBytes caps a single cell's cluster size on the print path.
// Interned clusters live forever (the table is append-only and process
// wide), so without a cap a combining-mark flood — one hostile session
// printing base+mark^n — would permanently intern O(n²) bytes of
// ever-longer prefixes. Real terminals cap combining sequences similarly;
// marks beyond the cap are dropped.
const maxGraphemeBytes = 32

// maxInternedGraphemes bounds the table's cardinality: the length cap
// alone would still let a hostile stream intern unboundedly many
// *distinct* short clusters. At the cap (≈4 MB worst case, process-wide)
// new clusters degrade gracefully — combining appends drop the mark,
// SetContents falls back to the cluster's base rune — while every
// already-interned cluster keeps rendering exactly.
const maxInternedGraphemes = 1 << 16

// maxCombineEntries bounds the combine cache for the same reason (its key
// space is (content word × rune), which an attacker can spray); past the
// cap, novel combinations take the uncached slow path but stay correct.
const maxCombineEntries = 1 << 18

// packRune returns the content word for a single rune.
func packRune(r rune) uint32 { return uint32(r) }

// combineKey caches the combining-character append transition: printing a
// combining mark onto a cell holding `content` yields the cluster
// `internTable.combine[key]`. It makes the combining print path a map hit
// instead of a string build + intern on every keystroke.
type combineKey struct {
	content uint32
	r       rune
}

// internTable is the concurrency-safe grapheme store. Writes (new
// clusters) take mu; the read paths are a read-locked map hit (intern,
// combine) or an atomic pointer load (index → string, used by rendering),
// so emulators on different goroutines never serialize on the render path
// and the steady-state print path performs no allocation.
type internTable struct {
	mu      sync.RWMutex
	byStr   map[string]uint32
	combine map[combineKey]uint32
	// backing is the writer's view of the index → cluster array (guarded
	// by mu); strs republishes a longer header over the same backing after
	// every append so readers need no lock.
	backing []string
	strs    atomic.Pointer[[]string]
}

// graphemes is the process-wide table.
var graphemes = &internTable{
	byStr:   make(map[string]uint32),
	combine: make(map[combineKey]uint32),
}

// InternedGraphemes reports how many multi-rune clusters the process-wide
// table holds (a resident-memory observability gauge; sessiond exports it).
func InternedGraphemes() int {
	if p := graphemes.strs.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// internContents returns the content word for an arbitrary grapheme
// string: blank for empty, inline for a single rune, interned otherwise.
// When the table is at capacity a novel cluster degrades to its base rune
// (deterministic and render-safe) rather than growing the table.
func internContents(s string) uint32 {
	if s == "" {
		return 0
	}
	r, size := utf8.DecodeRuneInString(s)
	if size == len(s) {
		return packRune(r)
	}
	if v, ok := graphemes.intern(s); ok {
		return v
	}
	return packRune(r)
}

// intern returns the canonical content word for multi-rune cluster s,
// adding it to the table on first sight. ok is false when the table is at
// its cardinality cap and s is not already present; callers degrade.
//
// Growth is amortized O(1): the backing array is extended in place (the
// new element sits beyond every published snapshot's length, and the
// atomic Store that publishes the longer header is the release barrier
// readers synchronize on), with append's doubling only when capacity runs
// out — never a full copy per insert.
func (t *internTable) intern(s string) (uint32, bool) {
	t.mu.RLock()
	v, ok := t.byStr[s]
	t.mu.RUnlock()
	if ok {
		return v, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.byStr[s]; ok {
		return v, true
	}
	n := len(t.backing)
	if n >= maxInternedGraphemes {
		return 0, false
	}
	// Copy so the callers' byte slices / substrings are never retained.
	t.backing = append(t.backing, string(append([]byte(nil), s...)))
	hdr := t.backing
	t.strs.Store(&hdr)
	v = graphemeBit | uint32(n)
	t.byStr[t.backing[n]] = v
	return v, true
}

// appendRune returns the content word for `content` extended by the
// combining rune r — the emulator's combining-character print path. The
// steady state is a read-locked cache hit with zero allocations; only the
// first sighting of a (cluster, mark) pair builds a string. Clusters are
// capped at maxGraphemeBytes — an over-limit mark leaves the cell
// unchanged — and a full table likewise drops the mark; both outcomes are
// cached (while the cache itself is within bounds) so floods stay on the
// allocation-free hit path.
func (t *internTable) appendRune(content uint32, r rune) uint32 {
	if content == 0 {
		return internContents(string(r))
	}
	k := combineKey{content: content, r: r}
	t.mu.RLock()
	v, ok := t.combine[k]
	t.mu.RUnlock()
	if ok {
		return v
	}
	if s := t.clusterString(content); len(s)+utf8.RuneLen(r) > maxGraphemeBytes {
		v = content
	} else if iv, ok := t.intern(s + string(r)); ok {
		v = iv
	} else {
		v = content // table at capacity: drop the mark
	}
	t.mu.Lock()
	if len(t.combine) < maxCombineEntries {
		t.combine[k] = v
	}
	t.mu.Unlock()
	return v
}

// lookup returns the cluster string for an interned content word.
func (t *internTable) lookup(content uint32) string {
	return (*t.strs.Load())[content&^graphemeBit]
}

// clusterString materializes any content word against this table (inline
// runes resolve without a table at all).
func (t *internTable) clusterString(content uint32) string {
	if content&graphemeBit != 0 {
		return t.lookup(content)
	}
	return contentString(content)
}

// contentString materializes a content word as the grapheme string ("" for
// blank). Rendering hot paths use appendContent instead; this allocates
// for non-ASCII inline runes.
func contentString(content uint32) string {
	switch {
	case content == 0:
		return ""
	case content&graphemeBit == 0:
		r := rune(content)
		if r >= 0x20 && r < 0x7f {
			i := int(r) - 0x20
			return asciiContents[i : i+1]
		}
		return string(r)
	default:
		return graphemes.lookup(content)
	}
}

// appendContent appends the visible bytes of a content word to buf (a
// space when blank, mirroring Cell.String). This is the renderer's
// allocation-free emission path.
func appendContent(buf []byte, content uint32) []byte {
	switch {
	case content == 0:
		return append(buf, ' ')
	case content&graphemeBit == 0:
		return utf8.AppendRune(buf, rune(content))
	default:
		return append(buf, graphemes.lookup(content)...)
	}
}

// asciiContents interns the single-character strings for printable ASCII
// so ContentsString never allocates for the common case.
const asciiContents = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
