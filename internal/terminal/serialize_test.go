package terminal

import (
	"bytes"
	"testing"
)

// sampleScreen builds a framebuffer exercising every serialized feature:
// colors and attributes, wide and combining characters, tabs, a scrolling
// region, saved cursor, title, and scrolled-off history.
func sampleScreen() *Framebuffer {
	emu := NewEmulator(80, 24)
	fb := emu.Framebuffer()
	fb.SetScrollbackLimit(40)
	emu.WriteString("\x1b]0;snapshot codec\x07")
	emu.WriteString("\x1b[1;4;38;5;202mhot\x1b[0m \x1b[48;2;1;2;3mrgb bg\x1b[0m\r\n")
	emu.WriteString("wide: 你好 combining: ȩ́ emoji: 🙂\r\n")
	emu.WriteString("\x1b[2g\x1b[8G\x1bH") // tab games
	for i := 0; i < 50; i++ {
		emu.WriteString("history line scrolling away\r\n")
	}
	emu.WriteString("\x1b[5;18r\x1b[?6h")   // scroll region + origin mode
	emu.WriteString("\x1b7\x1b[3;3Hparked") // saved cursor, content
	emu.WriteString("\a")
	return fb
}

// TestSnapshotRoundTrip: the canonical serialization is a fixed point of
// decode∘encode, and the restored screen is semantically equal (including
// the scrollback window and draw state the codec carries).
func TestSnapshotRoundTrip(t *testing.T) {
	fb := sampleScreen()
	enc := fb.AppendSnapshot(nil)
	got, rest, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d unconsumed bytes", len(rest))
	}
	if !got.Equal(fb) {
		t.Fatal("restored framebuffer is not Equal to the original")
	}
	if got.ScrollbackLines() != fb.ScrollbackLines() {
		t.Fatalf("scrollback %d != %d", got.ScrollbackLines(), fb.ScrollbackLines())
	}
	for i := 0; i < fb.ScrollbackLines(); i++ {
		if got.ScrollbackText(i) != fb.ScrollbackText(i) {
			t.Fatalf("scrollback line %d differs", i)
		}
	}
	re := got.AppendSnapshot(nil)
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(enc), len(re))
	}
	// Interned contents decode to identical strings (re-interned into the
	// live table).
	for r := 0; r < fb.H; r++ {
		for c := 0; c < fb.W; c++ {
			if fb.Peek(r, c).ContentsString() != got.Peek(r, c).ContentsString() {
				t.Fatalf("cell (%d,%d) contents differ", r, c)
			}
		}
	}
}

// TestSnapshotDecodeNeverPanics: every strict prefix and a sweep of
// bit-flipped variants must return cleanly (error or not), never panic,
// and never decode to something that fails to re-encode.
func TestSnapshotDecodeNeverPanics(t *testing.T) {
	enc := sampleScreen().AppendSnapshot(nil)
	for n := 0; n < len(enc); n++ {
		if fb, _, err := DecodeSnapshot(enc[:n]); err == nil {
			_ = fb.AppendSnapshot(nil)
			t.Fatalf("strict prefix %d/%d decoded without error", n, len(enc))
		}
	}
	for pos := 0; pos < len(enc); pos += 3 {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x20
		if fb, _, err := DecodeSnapshot(mut); err == nil {
			_ = fb.AppendSnapshot(nil) // decoded forms must be usable
		}
	}
	if _, _, err := DecodeSnapshot(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	// Version skew errors.
	mut := append([]byte(nil), enc...)
	mut[0] = snapshotVersion + 1
	if _, _, err := DecodeSnapshot(mut); err == nil {
		t.Fatal("version-skewed snapshot decoded")
	}
}

// TestSnapshotEncodeAllocFree guards the journal writer's steady state:
// serializing a populated screen into a warmed buffer performs no heap
// allocations.
func TestSnapshotEncodeAllocFree(t *testing.T) {
	fb := sampleScreen()
	buf := fb.AppendSnapshot(nil)
	if n := testing.AllocsPerRun(200, func() {
		buf = fb.AppendSnapshot(buf[:0])
	}); n != 0 {
		t.Fatalf("AppendSnapshot allocates %.1f times per run, want 0", n)
	}
}
