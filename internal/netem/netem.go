// Package netem is a deterministic network emulator in the spirit of the
// Linux netem qdisc the paper used for its packet-loss experiment. It models
// unidirectional links with propagation delay, jitter, i.i.d. loss, a
// bottleneck transmission rate and a drop-tail queue, delivering packets
// through a simclock.Scheduler so that entire experiments run in virtual
// time and are exactly reproducible from a seed.
//
// The same emulator reproduces every network in the paper's evaluation:
// Sprint EV-DO (long RTT), Verizon LTE with a deep bufferbloated bottleneck
// queue, the MIT–Singapore wired path, and the 29%-loss netem router.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simclock"
)

// Addr identifies an endpoint on the emulated network, standing in for an
// (IP, UDP port) pair. The Host field changes when a mobile client roams.
//
// IPv4 addresses (and everything the emulator itself mints) use Host+Port
// alone. A native IPv6 peer on the real-socket path sets V6 and carries
// its upper 12 address bytes in Pfx, with the low 4 bytes in Host — the
// struct stays comparable (it is a map key throughout the stack) and the
// mapping stays bijective, so replies decompress straight back into
// socket addresses with no side table to poison. IPv4-mapped IPv6 sources
// (::ffff:a.b.c.d) canonicalize to the plain IPv4 form; the V6 flag
// disambiguates ::0.0.0.1 from 0.0.0.1. Scope IDs (link-local zones) are
// out of scope: such peers are refused at decode rather than aliased.
type Addr struct {
	Host uint32
	Port uint16
	V6   bool
	Pfx  [12]byte
}

// String renders the address in a dotted-quad-like form for logs (and
// bracketed hex for native IPv6).
func (a Addr) String() string {
	if a.V6 {
		return fmt.Sprintf("[%x:%x:%x:%x:%x:%x:%x:%x]:%d",
			uint16(a.Pfx[0])<<8|uint16(a.Pfx[1]), uint16(a.Pfx[2])<<8|uint16(a.Pfx[3]),
			uint16(a.Pfx[4])<<8|uint16(a.Pfx[5]), uint16(a.Pfx[6])<<8|uint16(a.Pfx[7]),
			uint16(a.Pfx[8])<<8|uint16(a.Pfx[9]), uint16(a.Pfx[10])<<8|uint16(a.Pfx[11]),
			uint16(a.Host>>16), uint16(a.Host), a.Port)
	}
	return fmt.Sprintf("10.%d.%d.%d:%d", byte(a.Host>>16), byte(a.Host>>8), byte(a.Host), a.Port)
}

// Packet is a datagram in flight on the emulated network.
type Packet struct {
	Src, Dst Addr
	Payload  []byte
}

// Handler receives packets addressed to an attached node.
type Handler func(p Packet)

// Sender is the transmit side of a link; endpoints hold a Sender for the
// direction they talk on. Send reports whether the packet entered the link
// (false means it was dropped at ingress by loss or a full queue).
type Sender interface {
	Send(p Packet) bool
}

// Network dispatches delivered packets to attached nodes by address.
// Packets addressed to a detached node are silently dropped, exactly as on
// a real network.
type Network struct {
	sched *simclock.Scheduler
	nodes map[Addr]Handler
}

// NewNetwork returns an empty network driven by sched.
func NewNetwork(sched *simclock.Scheduler) *Network {
	return &Network{sched: sched, nodes: make(map[Addr]Handler)}
}

// Scheduler exposes the scheduler driving the network.
func (n *Network) Scheduler() *simclock.Scheduler { return n.sched }

// Attach registers h to receive packets addressed to a. Re-attaching an
// address replaces the previous handler; a roaming client attaches its new
// address and detaches the old one.
func (n *Network) Attach(a Addr, h Handler) { n.nodes[a] = h }

// Detach removes the node at a.
func (n *Network) Detach(a Addr) { delete(n.nodes, a) }

func (n *Network) deliver(p Packet) {
	if h, ok := n.nodes[p.Dst]; ok {
		h(p)
	}
}

// LinkParams configures one direction of an emulated path.
type LinkParams struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// LossProb is the i.i.d. probability that a packet is dropped.
	LossProb float64
	// RateBitsPerSec is the bottleneck transmission rate; 0 means infinite.
	RateBitsPerSec int64
	// QueueBytes is the drop-tail queue capacity ahead of the bottleneck;
	// 0 means unlimited. Deep queues model 3G/LTE bufferbloat.
	QueueBytes int
	// Overhead is added to each packet's length when computing
	// transmission time and queue occupancy (IP+UDP headers and so on).
	Overhead int
	// AllowReorder permits jitter to reorder packets. When false
	// (the default), delivery times are monotonized per link.
	AllowReorder bool
	// DeliveryQuantum, when positive, rounds every delivery instant up to
	// the next multiple of the quantum. It models receive-side interrupt
	// coalescing / reader-wakeup granularity: a real NIC and epoll loop
	// hand the process everything that arrived since the last wakeup in
	// one go, which is exactly the clustering that makes recvmmsg pay off.
	// Packets that would land within the same quantum are delivered at the
	// same (quantized) instant, where a batch-aware endpoint (BatchSink)
	// can take them as one batch. Zero keeps exact delivery times.
	DeliveryQuantum time.Duration
}

// LinkStats counts what happened to packets offered to a link.
type LinkStats struct {
	Sent           int // packets accepted onto the link
	Delivered      int
	DroppedLoss    int // random loss
	DroppedQueue   int // drop-tail overflow
	BytesDelivered int64
	MaxQueueBytes  int // high-water mark of queue occupancy
}

// Link is one direction of an emulated path. Multiple flows may share a
// Link, in which case they share its bottleneck queue — this is how the
// "concurrent TCP download" experiment fills the buffer that delays SSH.
type Link struct {
	net          *Network
	params       LinkParams
	rng          *rand.Rand
	busyUntil    time.Time // when the bottleneck transmitter frees up
	queuedBytes  int
	lastDelivery time.Time
	stats        LinkStats
}

// NewLink creates a link on net with the given parameters. Links with the
// same seed and traffic behave identically run-to-run.
func NewLink(net *Network, params LinkParams, seed int64) *Link {
	return &Link{net: net, params: params, rng: rand.New(rand.NewSource(seed))}
}

// Params returns the link's configuration.
func (l *Link) Params() LinkParams { return l.params }

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes reports current queue occupancy at the bottleneck.
func (l *Link) QueueBytes() int { return l.queuedBytes }

// QueueDelay reports how long a packet entering now would wait before its
// transmission begins.
func (l *Link) QueueDelay() time.Duration {
	now := l.net.sched.Now()
	if l.busyUntil.After(now) {
		return l.busyUntil.Sub(now)
	}
	return 0
}

// Send offers a packet to the link. The payload is not copied; callers must
// not reuse the buffer.
func (l *Link) Send(p Packet) bool {
	now := l.net.sched.Now()
	if l.params.LossProb > 0 && l.rng.Float64() < l.params.LossProb {
		l.stats.DroppedLoss++
		return false
	}
	size := len(p.Payload) + l.params.Overhead
	deliverAt := now
	if l.params.RateBitsPerSec > 0 {
		if l.params.QueueBytes > 0 && l.queuedBytes+size > l.params.QueueBytes {
			l.stats.DroppedQueue++
			return false
		}
		start := now
		if l.busyUntil.After(start) {
			start = l.busyUntil
		}
		tx := time.Duration(int64(size) * 8 * int64(time.Second) / l.params.RateBitsPerSec)
		l.busyUntil = start.Add(tx)
		l.queuedBytes += size
		if l.queuedBytes > l.stats.MaxQueueBytes {
			l.stats.MaxQueueBytes = l.queuedBytes
		}
		endOfTx := l.busyUntil
		l.net.sched.At(endOfTx, func() { l.queuedBytes -= size })
		deliverAt = endOfTx
	}
	deliverAt = deliverAt.Add(l.params.Delay)
	if l.params.Jitter > 0 {
		deliverAt = deliverAt.Add(time.Duration(l.rng.Int63n(int64(l.params.Jitter))))
	}
	if q := l.params.DeliveryQuantum; q > 0 {
		// Round up to the next quantum boundary (ceiling preserves per-link
		// ordering, so it composes with the monotonize step below).
		if rem := deliverAt.UnixNano() % int64(q); rem > 0 {
			deliverAt = deliverAt.Add(q - time.Duration(rem))
		}
	}
	if !l.params.AllowReorder && deliverAt.Before(l.lastDelivery) {
		deliverAt = l.lastDelivery
	}
	l.lastDelivery = deliverAt
	l.stats.Sent++
	l.net.sched.At(deliverAt, func() {
		l.stats.Delivered++
		l.stats.BytesDelivered += int64(len(p.Payload))
		l.net.deliver(p)
	})
	return true
}

// BatchSink is a batch-aware endpoint: it coalesces every packet
// delivered to its address in the same scheduler instant and hands them
// to the handler as one slice — the virtual-time analogue of one
// recvmmsg call draining the socket queue. Combined with
// LinkParams.DeliveryQuantum (which clusters near-simultaneous arrivals
// onto shared instants) it lets in-process simulations exercise the same
// batch ingress code path a production daemon runs on a real socket.
type BatchSink struct {
	net     *Network
	handler func(pkts []Packet)
	pending []Packet
	scratch []Packet // drained batch handed to the handler, then recycled
	armed   bool
}

// NewBatchSink attaches a coalescing endpoint for a at its network.
// The batch slice passed to h is reused after h returns; retain copies.
func NewBatchSink(n *Network, a Addr, h func(pkts []Packet)) *BatchSink {
	s := &BatchSink{net: n, handler: h}
	n.Attach(a, s.deliver)
	return s
}

func (s *BatchSink) deliver(p Packet) {
	s.pending = append(s.pending, p)
	if !s.armed {
		// All deliveries for this instant were scheduled before now, so an
		// After(0) event runs behind them (same-instant events fire FIFO)
		// and the drain sees the complete batch.
		s.armed = true
		s.net.sched.AfterFunc(0, s.drain)
	}
}

func (s *BatchSink) drain() {
	s.armed = false
	batch := s.pending
	// Swap buffers before invoking the handler, so packets a re-entrant
	// same-instant delivery might add are not lost (they start a new
	// batch) and the handler's slice is stable while it runs.
	s.pending = s.scratch[:0]
	s.scratch = batch
	if len(batch) > 0 {
		s.handler(batch)
	}
}

// MaxCoalesce is the segment ceiling one coalesced super-datagram may
// carry, mirroring the kernel's UDP_MAX_SEGMENTS so virtual-time runs
// group exactly like a GSO/GRO-capable NIC path.
const MaxCoalesce = 64

// CoalescedRuns reports how many datagrams a segmentation-aware (UDP GRO)
// receiver would see in one delivered batch: adjacent packets from the
// same source whose payloads equal the first's length collapse into one
// super-datagram (the last segment of a run may be shorter, ending it),
// capped at MaxCoalesce segments per run. This is the delivery-side
// grouping rule the real udpbatch GSO provider applies on egress, exposed
// here so virtual-time experiments can meter stack traversals with the
// same arithmetic the kernel path pays.
func CoalescedRuns(pkts []Packet) int {
	runs := 0
	for off := 0; off < len(pkts); {
		seg := len(pkts[off].Payload)
		src := pkts[off].Src
		n := 1
		for off+n < len(pkts) && n < MaxCoalesce && seg > 0 {
			l := len(pkts[off+n].Payload)
			if pkts[off+n].Src != src || l > seg || l == 0 {
				break
			}
			n++
			if l < seg {
				break // shorter trailer closes the super-datagram
			}
		}
		off += n
		runs++
	}
	return runs
}

// Path is a bidirectional link pair between a client side and a server
// side: Up carries client→server traffic, Down carries server→client.
type Path struct {
	Up, Down *Link
}

// NewPath builds a symmetric path from one parameter set, with independent
// loss/jitter randomness per direction derived from seed.
func NewPath(net *Network, params LinkParams, seed int64) *Path {
	return &Path{
		Up:   NewLink(net, params, seed),
		Down: NewLink(net, params, seed+0x9e3779b9),
	}
}

// NewAsymmetricPath builds a path with distinct per-direction parameters.
func NewAsymmetricPath(net *Network, up, down LinkParams, seed int64) *Path {
	return &Path{
		Up:   NewLink(net, up, seed),
		Down: NewLink(net, down, seed+0x9e3779b9),
	}
}

// Profiles for the paper's evaluation networks. RTTs follow §4: EV-DO
// "about half a second", MIT–Singapore 273 ms, the loss experiment 100 ms.
// Rates and queue depths are chosen to reproduce the published bufferbloat
// behaviour (multi-second delays under a concurrent bulk transfer).

// EVDO models the Sprint EV-DO (3G) connection: ~500 ms RTT, modest rate,
// a deep buffer, light jitter.
func EVDO() LinkParams {
	return LinkParams{
		Delay:          190 * time.Millisecond,
		Jitter:         25 * time.Millisecond,
		RateBitsPerSec: 900_000,
		QueueBytes:     30_000,
		Overhead:       28,
	}
}

// LTE models the Verizon LTE connection: short propagation delay, high
// rate, and a very deep drop-tail buffer — the bufferbloat that produces
// multi-second SSH latency when a concurrent download fills it.
func LTE() LinkParams {
	return LinkParams{
		Delay:          25 * time.Millisecond,
		Jitter:         10 * time.Millisecond,
		RateBitsPerSec: 8_000_000,
		QueueBytes:     4_000_000,
		Overhead:       28,
	}
}

// Transoceanic models the MIT→Singapore wired path: 273 ms RTT, fast,
// effectively lossless, tiny jitter.
func Transoceanic() LinkParams {
	return LinkParams{
		Delay:          136 * time.Millisecond,
		Jitter:         2 * time.Millisecond,
		RateBitsPerSec: 100_000_000,
		QueueBytes:     1_000_000,
		Overhead:       28,
	}
}

// LossyNetem models the paper's router experiment: 100 ms RTT and 29%
// i.i.d. loss in each direction (≈50% round-trip loss), no rate limit.
func LossyNetem() LinkParams {
	return LinkParams{
		Delay:    50 * time.Millisecond,
		LossProb: 0.29,
		Overhead: 28,
	}
}
