package netem

import (
	"math"
	"testing"
	"time"

	"repro/internal/simclock"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

func testNet() (*simclock.Scheduler, *Network) {
	s := simclock.NewScheduler(t0)
	return s, NewNetwork(s)
}

func TestDeliveryAfterDelay(t *testing.T) {
	s, n := testNet()
	var gotAt time.Time
	var got Packet
	dst := Addr{Host: 2, Port: 60001}
	n.Attach(dst, func(p Packet) { gotAt, got = s.Now(), p })
	l := NewLink(n, LinkParams{Delay: 100 * time.Millisecond}, 1)
	ok := l.Send(Packet{Src: Addr{Host: 1, Port: 9}, Dst: dst, Payload: []byte("hi")})
	if !ok {
		t.Fatal("send failed")
	}
	s.Drain(0)
	if !gotAt.Equal(t0.Add(100 * time.Millisecond)) {
		t.Fatalf("delivered at %v", gotAt)
	}
	if string(got.Payload) != "hi" || got.Src.Port != 9 {
		t.Fatalf("wrong packet %+v", got)
	}
}

func TestDetachedNodeDrops(t *testing.T) {
	s, n := testNet()
	l := NewLink(n, LinkParams{}, 1)
	l.Send(Packet{Dst: Addr{Host: 9}, Payload: []byte("x")})
	s.Drain(0) // must not panic
	if l.Stats().Delivered != 1 {
		t.Fatalf("stats = %+v", l.Stats())
	}
}

func TestLossRate(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 2}
	delivered := 0
	n.Attach(dst, func(Packet) { delivered++ })
	l := NewLink(n, LinkParams{LossProb: 0.29}, 42)
	const total = 20000
	for i := 0; i < total; i++ {
		l.Send(Packet{Dst: dst, Payload: []byte("p")})
	}
	s.Drain(0)
	rate := 1 - float64(delivered)/float64(total)
	if math.Abs(rate-0.29) > 0.02 {
		t.Fatalf("observed loss %.3f, want ~0.29", rate)
	}
	st := l.Stats()
	if st.DroppedLoss+st.Delivered != total {
		t.Fatalf("loss accounting: %+v", st)
	}
}

func TestRateLimitSerializes(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 2}
	var deliveries []time.Duration
	n.Attach(dst, func(Packet) { deliveries = append(deliveries, s.Now().Sub(t0)) })
	// 8000 bit/s => a 100-byte packet (no overhead) takes exactly 100ms.
	l := NewLink(n, LinkParams{RateBitsPerSec: 8000}, 1)
	for i := 0; i < 3; i++ {
		l.Send(Packet{Dst: dst, Payload: make([]byte, 100)})
	}
	s.Drain(0)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i := range want {
		if deliveries[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v (all: %v)", i, deliveries[i], want[i], deliveries)
		}
	}
}

func TestDropTailQueue(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 2}
	n.Attach(dst, func(Packet) {})
	l := NewLink(n, LinkParams{RateBitsPerSec: 8000, QueueBytes: 250}, 1)
	accepted := 0
	for i := 0; i < 5; i++ {
		if l.Send(Packet{Dst: dst, Payload: make([]byte, 100)}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d packets into a 250-byte queue of 100-byte packets, want 2", accepted)
	}
	if l.Stats().DroppedQueue != 3 {
		t.Fatalf("stats = %+v", l.Stats())
	}
	s.Drain(0)
	if l.QueueBytes() != 0 {
		t.Fatalf("queue did not drain: %d", l.QueueBytes())
	}
}

func TestQueueDrainsAllowingLaterTraffic(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 2}
	delivered := 0
	n.Attach(dst, func(Packet) { delivered++ })
	l := NewLink(n, LinkParams{RateBitsPerSec: 8000, QueueBytes: 150}, 1)
	l.Send(Packet{Dst: dst, Payload: make([]byte, 100)})
	s.RunFor(150 * time.Millisecond) // first packet transmitted at 100ms
	if !l.Send(Packet{Dst: dst, Payload: make([]byte, 100)}) {
		t.Fatal("queue should have drained")
	}
	s.Drain(0)
	if delivered != 2 {
		t.Fatalf("delivered %d", delivered)
	}
}

func TestNoReorderByDefault(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 2}
	var order []int
	n.Attach(dst, func(p Packet) { order = append(order, int(p.Payload[0])) })
	l := NewLink(n, LinkParams{Delay: 10 * time.Millisecond, Jitter: 50 * time.Millisecond}, 7)
	for i := 0; i < 50; i++ {
		l.Send(Packet{Dst: dst, Payload: []byte{byte(i)}})
		s.RunFor(time.Millisecond)
	}
	s.Drain(0)
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("reordered despite AllowReorder=false: %v", order)
		}
	}
}

func TestJitterCanReorderWhenAllowed(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 2}
	var order []int
	n.Attach(dst, func(p Packet) { order = append(order, int(p.Payload[0])) })
	l := NewLink(n, LinkParams{Delay: time.Millisecond, Jitter: 100 * time.Millisecond, AllowReorder: true}, 7)
	for i := 0; i < 100; i++ {
		l.Send(Packet{Dst: dst, Payload: []byte{byte(i)}})
		s.RunFor(time.Millisecond)
	}
	s.Drain(0)
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
		}
	}
	if !reordered {
		t.Fatal("expected at least one reordering with large jitter")
	}
}

func TestRoamingReattach(t *testing.T) {
	s, n := testNet()
	oldAddr := Addr{Host: 1, Port: 5}
	newAddr := Addr{Host: 99, Port: 6}
	atOld, atNew := 0, 0
	n.Attach(oldAddr, func(Packet) { atOld++ })
	l := NewLink(n, LinkParams{}, 1)
	l.Send(Packet{Dst: oldAddr})
	s.Drain(0)
	n.Detach(oldAddr)
	n.Attach(newAddr, func(Packet) { atNew++ })
	l.Send(Packet{Dst: oldAddr}) // stale destination: dropped
	l.Send(Packet{Dst: newAddr})
	s.Drain(0)
	if atOld != 1 || atNew != 1 {
		t.Fatalf("atOld=%d atNew=%d", atOld, atNew)
	}
}

func TestSharedLinkSharesQueue(t *testing.T) {
	s, n := testNet()
	a, b := Addr{Host: 2, Port: 1}, Addr{Host: 2, Port: 2}
	var aTimes []time.Duration
	n.Attach(a, func(Packet) { aTimes = append(aTimes, s.Now().Sub(t0)) })
	n.Attach(b, func(Packet) {})
	l := NewLink(n, LinkParams{RateBitsPerSec: 8000}, 1)
	// Bulk flow to b occupies the transmitter for 1s (1000 bytes at 1kB/s).
	l.Send(Packet{Dst: b, Payload: make([]byte, 1000)})
	// Interactive packet to a must wait behind it.
	l.Send(Packet{Dst: a, Payload: make([]byte, 10)})
	s.Drain(0)
	if len(aTimes) != 1 || aTimes[0] < time.Second {
		t.Fatalf("interactive packet did not queue behind bulk: %v", aTimes)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		s, n := testNet()
		dst := Addr{Host: 2}
		var times []time.Duration
		n.Attach(dst, func(Packet) { times = append(times, s.Now().Sub(t0)) })
		l := NewLink(n, LinkParams{Delay: 20 * time.Millisecond, Jitter: 30 * time.Millisecond, LossProb: 0.1}, 99)
		for i := 0; i < 200; i++ {
			l.Send(Packet{Dst: dst, Payload: []byte{byte(i)}})
			s.RunFor(3 * time.Millisecond)
		}
		s.Drain(0)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPathDirections(t *testing.T) {
	s, n := testNet()
	client, server := Addr{Host: 1, Port: 10}, Addr{Host: 2, Port: 20}
	gotAtServer, gotAtClient := 0, 0
	n.Attach(client, func(Packet) { gotAtClient++ })
	n.Attach(server, func(Packet) { gotAtServer++ })
	p := NewPath(n, LinkParams{Delay: 5 * time.Millisecond}, 3)
	p.Up.Send(Packet{Src: client, Dst: server})
	p.Down.Send(Packet{Src: server, Dst: client})
	s.Drain(0)
	if gotAtServer != 1 || gotAtClient != 1 {
		t.Fatalf("server=%d client=%d", gotAtServer, gotAtClient)
	}
}

func TestProfilesSane(t *testing.T) {
	for name, p := range map[string]LinkParams{
		"evdo": EVDO(), "lte": LTE(), "transoceanic": Transoceanic(), "lossy": LossyNetem(),
	} {
		if p.Delay <= 0 {
			t.Errorf("%s: non-positive delay", name)
		}
		if p.LossProb < 0 || p.LossProb >= 1 {
			t.Errorf("%s: bad loss prob %f", name, p.LossProb)
		}
	}
	if LossyNetem().LossProb != 0.29 {
		t.Error("loss experiment must use the paper's 29% per-direction loss")
	}
}

// TestDeliveryQuantumClusters proves quantization rounds delivery
// instants up to shared boundaries: packets sent a few hundred
// microseconds apart on distinct links land at the same quantized
// instant, while exact delivery stays untouched with the quantum off.
func TestDeliveryQuantumClusters(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 9, Port: 1}
	var at []time.Time
	n.Attach(dst, func(Packet) { at = append(at, s.Now()) })
	params := LinkParams{Delay: 2 * time.Millisecond, DeliveryQuantum: time.Millisecond}
	la := NewLink(n, params, 1)
	lb := NewLink(n, params, 2)
	s.RunFor(300 * time.Microsecond) // off a boundary: exact deliveries would differ
	la.Send(Packet{Dst: dst})
	s.RunFor(300 * time.Microsecond)
	lb.Send(Packet{Dst: dst})
	s.Drain(0)
	if len(at) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(at))
	}
	if !at[0].Equal(at[1]) {
		t.Fatalf("quantized deliveries differ: %v vs %v", at[0], at[1])
	}
	if got := at[0]; got.UnixNano()%int64(time.Millisecond) != 0 {
		t.Fatalf("delivery %v is not on a quantum boundary", got)
	}
	if early := t0.Add(2 * time.Millisecond); at[0].Before(early) {
		t.Fatalf("quantization delivered early: %v before %v", at[0], early)
	}
}

// TestDeliveryQuantumKeepsOrder checks per-link monotonicity survives
// quantization (ceiling is order-preserving, then monotonized).
func TestDeliveryQuantumKeepsOrder(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 9, Port: 1}
	var seq []byte
	n.Attach(dst, func(p Packet) { seq = append(seq, p.Payload[0]) })
	l := NewLink(n, LinkParams{Delay: time.Millisecond, Jitter: 3 * time.Millisecond, DeliveryQuantum: 2 * time.Millisecond}, 7)
	for i := byte(0); i < 20; i++ {
		l.Send(Packet{Dst: dst, Payload: []byte{i}})
		s.RunFor(200 * time.Microsecond)
	}
	s.Drain(0)
	if len(seq) != 20 {
		t.Fatalf("delivered %d/20", len(seq))
	}
	for i := range seq {
		if seq[i] != byte(i) {
			t.Fatalf("reordered delivery: %v", seq)
		}
	}
}

// TestBatchSinkCoalescesInstant: all packets delivered at one instant
// arrive as one batch; packets at a later instant start a new batch.
func TestBatchSinkCoalescesInstant(t *testing.T) {
	s, n := testNet()
	dst := Addr{Host: 3, Port: 60001}
	var batches [][]byte
	NewBatchSink(n, dst, func(pkts []Packet) {
		var b []byte
		for _, p := range pkts {
			b = append(b, p.Payload[0])
		}
		batches = append(batches, b)
	})
	params := LinkParams{Delay: 5 * time.Millisecond, DeliveryQuantum: time.Millisecond}
	for i := byte(0); i < 6; i++ {
		l := NewLink(n, params, int64(i))
		l.Send(Packet{Dst: dst, Payload: []byte{i}})
	}
	s.RunFor(20 * time.Millisecond)
	l := NewLink(n, params, 99)
	l.Send(Packet{Dst: dst, Payload: []byte{42}})
	s.Drain(0)
	if len(batches) != 2 {
		t.Fatalf("got %d batches (%v), want 2", len(batches), batches)
	}
	if len(batches[0]) != 6 {
		t.Fatalf("first batch = %v, want all 6 same-instant packets", batches[0])
	}
	if len(batches[1]) != 1 || batches[1][0] != 42 {
		t.Fatalf("second batch = %v", batches[1])
	}
}

// TestCoalescedRuns pins the simulator's segmentation-aware delivery
// model to the same run definition the real GSO provider uses.
func TestCoalescedRuns(t *testing.T) {
	a := Addr{Host: 1, Port: 1}
	b := Addr{Host: 2, Port: 2}
	mk := func(src Addr, n int) Packet { return Packet{Src: src, Payload: make([]byte, n)} }
	cases := []struct {
		name string
		pkts []Packet
		want int
	}{
		{"empty", nil, 0},
		{"one", []Packet{mk(a, 100)}, 1},
		{"same-src equal-len train", []Packet{mk(a, 100), mk(a, 100), mk(a, 100)}, 1},
		{"trailer joins its run", []Packet{mk(a, 100), mk(a, 100), mk(a, 40)}, 1},
		{"src change splits", []Packet{mk(a, 100), mk(b, 100), mk(a, 100)}, 3},
		{"len grows splits", []Packet{mk(a, 100), mk(a, 40), mk(a, 100)}, 2},
	}
	for _, tc := range cases {
		if got := CoalescedRuns(tc.pkts); got != tc.want {
			t.Errorf("%s: CoalescedRuns = %d, want %d", tc.name, got, tc.want)
		}
	}
	long := make([]Packet, MaxCoalesce+1)
	for i := range long {
		long[i] = mk(a, 100)
	}
	if got := CoalescedRuns(long); got != 2 {
		t.Errorf("segment cap: CoalescedRuns = %d, want 2", got)
	}
}
