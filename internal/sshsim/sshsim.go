// Package sshsim models an established SSH session for the paper's
// baseline comparison (§4): a character-at-a-time remote-echo channel over
// TCP (internal/tcpsim). Every keystroke travels to the server as stream
// bytes; every echo and screen update travels back the same way; the
// client renders output the moment it is delivered — but delivery is
// subject to TCP's in-order semantics, 1-second minimum RTO and
// exponential backoff, which is precisely what the paper measures against.
package sshsim

import (
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/tcpsim"
)

// Session is an established SSH connection between a client and server.
type Session struct {
	sched      *simclock.Scheduler
	ClientConn *tcpsim.Conn
	ServerConn *tcpsim.Conn

	// OnServerInput receives keystroke bytes as the server delivers them
	// (feed them to the host application).
	OnServerInput func(data []byte)
	// OnClientOutput receives host output bytes as the client delivers
	// them (render them; cumulative count drives latency measurement).
	OnClientOutput func(data []byte)

	bytesDown int64 // cumulative host bytes queued server→client
	bytesSeen int64 // cumulative host bytes delivered at the client
}

// Config assembles a session.
type Config struct {
	Sched      *simclock.Scheduler
	Net        *netem.Network
	Path       *netem.Path
	ClientAddr netem.Addr
	ServerAddr netem.Addr
	// MinRTO overrides TCP's 1 s floor (ablation; 0 = standard).
	MinRTO time.Duration
}

// New wires a session over the path: keystrokes ride Up, output rides
// Down.
func New(cfg Config) *Session {
	s := &Session{sched: cfg.Sched}
	s.ClientConn = tcpsim.New(tcpsim.Config{
		Sched: cfg.Sched, Link: cfg.Path.Up, Local: cfg.ClientAddr, Remote: cfg.ServerAddr,
		MinRTO: cfg.MinRTO,
		Deliver: func(d []byte) {
			s.bytesSeen += int64(len(d))
			if s.OnClientOutput != nil {
				s.OnClientOutput(d)
			}
		},
	})
	s.ServerConn = tcpsim.New(tcpsim.Config{
		Sched: cfg.Sched, Link: cfg.Path.Down, Local: cfg.ServerAddr, Remote: cfg.ClientAddr,
		MinRTO: cfg.MinRTO,
		Deliver: func(d []byte) {
			if s.OnServerInput != nil {
				s.OnServerInput(d)
			}
		},
	})
	cfg.Net.Attach(cfg.ClientAddr, func(p netem.Packet) { s.ClientConn.Receive(p.Payload) })
	cfg.Net.Attach(cfg.ServerAddr, func(p netem.Packet) { s.ServerConn.Receive(p.Payload) })
	return s
}

// Type sends keystroke bytes from the client (character-at-a-time; SSH
// has no local echo).
func (s *Session) Type(data []byte) { s.ClientConn.Send(data) }

// HostOutput queues host output on the server side and returns the
// cumulative stream offset after the write; the caller uses it to detect
// when this write has been fully delivered at the client.
func (s *Session) HostOutput(data []byte) int64 {
	s.ServerConn.Send(data)
	s.bytesDown += int64(len(data))
	return s.bytesDown
}

// DeliveredAtClient reports cumulative host bytes the client has rendered.
func (s *Session) DeliveredAtClient() int64 { return s.bytesSeen }

// BulkFlow starts a saturating bulk transfer sharing the session's
// downlink (the "concurrent TCP download" of the LTE experiment). It
// keeps the sender's buffer topped up indefinitely.
func BulkFlow(sched *simclock.Scheduler, nw *netem.Network, path *netem.Path,
	srcAddr, dstAddr netem.Addr) (*tcpsim.Conn, *tcpsim.Conn) {
	src := tcpsim.New(tcpsim.Config{
		Sched: sched, Link: path.Down, Local: srcAddr, Remote: dstAddr,
		// CUBIC (the paper's "Linux default TCP"): wall-clock growth
		// that plateaus near the loss point keeps a deep drop-tail
		// buffer standing full (bufferbloat).
		Beta:     0.7,
		UseCubic: true,
	})
	dst := tcpsim.New(tcpsim.Config{Sched: sched, Link: path.Up, Local: dstAddr, Remote: srcAddr})
	nw.Attach(srcAddr, func(p netem.Packet) { src.Receive(p.Payload) })
	nw.Attach(dstAddr, func(p netem.Packet) { dst.Receive(p.Payload) })
	chunk := make([]byte, 32*1024)
	var feed func()
	feed = func() {
		if src.Buffered() < 8*1024*1024 {
			src.Send(chunk)
		}
		sched.AfterFunc(10*time.Millisecond, feed)
	}
	sched.AfterFunc(0, feed)
	return src, dst
}
