package sshsim

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

func newSession(params netem.LinkParams) (*simclock.Scheduler, *Session) {
	sched := simclock.NewScheduler(t0)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, params, 4)
	ss := New(Config{
		Sched: sched, Net: nw, Path: path,
		ClientAddr: netem.Addr{Host: 1, Port: 1002},
		ServerAddr: netem.Addr{Host: 2, Port: 22},
	})
	return sched, ss
}

func TestKeystrokeEchoRoundTrip(t *testing.T) {
	sched, ss := newSession(netem.LinkParams{Delay: 100 * time.Millisecond})
	var serverGot, clientGot []byte
	ss.OnServerInput = func(d []byte) {
		serverGot = append(serverGot, d...)
		ss.HostOutput(d) // echo
	}
	ss.OnClientOutput = func(d []byte) { clientGot = append(clientGot, d...) }
	start := sched.Now()
	ss.Type([]byte("x"))
	sched.RunFor(5 * time.Second)
	if string(serverGot) != "x" || string(clientGot) != "x" {
		t.Fatalf("server=%q client=%q", serverGot, clientGot)
	}
	// Echo latency is one full RTT (no local echo in SSH).
	_ = start
	if ss.DeliveredAtClient() != 1 {
		t.Fatalf("delivered = %d", ss.DeliveredAtClient())
	}
}

func TestCharacterAtATimeOrdering(t *testing.T) {
	sched, ss := newSession(netem.LinkParams{Delay: 30 * time.Millisecond, LossProb: 0.2})
	var got []byte
	ss.OnServerInput = func(d []byte) { got = append(got, d...) }
	want := "ordered keystrokes survive loss"
	for i := 0; i < len(want); i++ {
		b := want[i]
		sched.AfterFunc(time.Duration(i)*50*time.Millisecond, func() { ss.Type([]byte{b}) })
	}
	sched.RunFor(5 * time.Minute)
	if string(got) != want {
		t.Fatalf("server saw %q", got)
	}
}

func TestHostOutputOffsets(t *testing.T) {
	_, ss := newSession(netem.LinkParams{})
	if off := ss.HostOutput([]byte("abc")); off != 3 {
		t.Fatalf("offset = %d", off)
	}
	if off := ss.HostOutput([]byte("de")); off != 5 {
		t.Fatalf("offset = %d", off)
	}
}

func TestBulkFlowSaturatesSharedLink(t *testing.T) {
	sched := simclock.NewScheduler(t0)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LTE(), 4)
	src, _ := BulkFlow(sched, nw, path, netem.Addr{Host: 2, Port: 80}, netem.Addr{Host: 1, Port: 8080})
	sched.RunFor(60 * time.Second) // CUBIC takes tens of seconds to stand the queue up
	if src.Stats().SegmentsSent < 100 {
		t.Fatalf("bulk flow sent only %d segments", src.Stats().SegmentsSent)
	}
	if path.Down.Stats().MaxQueueBytes < netem.LTE().QueueBytes/2 {
		t.Fatalf("bulk flow did not fill the bottleneck queue: %d of %d",
			path.Down.Stats().MaxQueueBytes, netem.LTE().QueueBytes)
	}
}

func TestInteractiveSharingBufferbloatedLink(t *testing.T) {
	// The LTE experiment's mechanism: with a concurrent download filling
	// the queue, an interactive keystroke's echo takes multiple seconds.
	sched := simclock.NewScheduler(t0)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LTE(), 4)
	ss := New(Config{
		Sched: sched, Net: nw, Path: path,
		ClientAddr: netem.Addr{Host: 1, Port: 1002},
		ServerAddr: netem.Addr{Host: 2, Port: 22},
	})
	BulkFlow(sched, nw, path, netem.Addr{Host: 2, Port: 80}, netem.Addr{Host: 1, Port: 8080})
	ss.OnServerInput = func(d []byte) { ss.HostOutput(d) }
	var echoAt time.Time
	ss.OnClientOutput = func([]byte) {
		if echoAt.IsZero() {
			echoAt = sched.Now()
		}
	}
	sched.RunFor(15 * time.Second) // let the queue fill
	start := sched.Now()
	ss.Type([]byte("x"))
	sched.RunFor(2 * time.Minute)
	if echoAt.IsZero() {
		t.Fatal("echo never arrived")
	}
	lat := echoAt.Sub(start)
	if lat < time.Second {
		t.Fatalf("echo latency %v; bufferbloat should make it multi-second", lat)
	}
}
