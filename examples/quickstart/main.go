// Quickstart: a complete Mosh session — client, server, and a shell —
// running over an emulated 3G path in virtual time. It shows the two
// things the paper is about: SSP keeping both sides synchronized, and
// speculative local echo making a 500 ms-RTT link feel instant.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

func main() {
	// A deterministic virtual-time world with an EV-DO-like path
	// (~500 ms RTT), exactly as in the paper's headline experiment.
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.EVDO(), 42)
	key, _ := sspcrypto.NewRandomKey()

	clientAddr := netem.Addr{Host: 1, Port: 1000}
	serverAddr := netem.Addr{Host: 2, Port: 60001}

	// The host application behind the server: a shell at a prompt.
	shell := host.NewShell(7)

	// Host responses are serialized: batched keystrokes must echo in
	// input order even when their simulated processing delays differ.
	var lastRespAt time.Time
	var server *core.Server
	var client *core.Client
	var wakeServer, wakeClient func()

	server, _ = core.NewServer(core.ServerConfig{
		Key: key, Clock: sched,
		Emit: func(wire []byte) {
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: wire})
			}
		},
		HostInput: func(data []byte) {
			out, delay := shell.Input(data)
			if len(out) > 0 {
				at := sched.Now().Add(delay)
				if at.Before(lastRespAt) {
					at = lastRespAt
				}
				lastRespAt = at
				sched.At(at, func() { server.HostOutput(out); wakeServer() })
			}
		},
	})
	client, _ = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched, Predictions: overlay.Adaptive,
		Emit: func(wire []byte) {
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: wire})
		},
	})

	wakeClient = core.Pump(sched, client)
	wakeServer = core.Pump(sched, server)
	nw.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src); wakeServer() })
	nw.Attach(clientAddr, func(p netem.Packet) { client.Receive(p.Payload, p.Src); wakeClient() })

	server.HostOutput(shell.Start())
	sched.RunFor(2 * time.Second)

	// Type a command. After a short warm-up the prediction engine shows
	// keystrokes the instant they are pressed, half a second before the
	// server's echo can possibly return.
	fmt.Println("typing 'echo hello mosh' over a ~500ms-RTT 3G path:")
	for i, r := range "echo hello mosh" {
		client.TypeRune(r)
		wakeClient()
		sched.RunFor(5 * time.Millisecond) // far less than the RTT
		row := strings.TrimRight(client.Display().Text(0), " ")
		if i == 2 || i == 8 || i == 14 {
			fmt.Printf("  +5ms after keystroke %2d, client shows: %q\n", i+1, row)
		}
		sched.RunFor(175 * time.Millisecond)
	}

	client.UserBytes([]byte{'\r'})
	wakeClient()
	sched.RunFor(3 * time.Second)

	fmt.Println("\nafter ENTER (one round trip later), the synchronized screen:")
	d := client.Display()
	for i := 0; i < 4; i++ {
		if row := strings.TrimRight(d.Text(i), " "); row != "" {
			fmt.Printf("  |%s\n", row)
		}
	}

	fmt.Printf("\nscreens converged: %v\n", verify(client, server))
	fmt.Printf("server row0: %q\n", server.Terminal().Framebuffer().Text(0))
	st := client.Predictions().Stats()
	fmt.Printf("\nprediction engine: %d keystrokes, %d predicted, %d shown instantly, %d confirmed\n",
		st.InputEvents, st.Predicted, st.ShownImmediately, st.Correct)
	fmt.Printf("connection: SRTT=%v, %d datagrams client→server\n",
		client.Transport().Connection().SRTT(0).Round(time.Millisecond),
		client.Transport().Sender().Stats().Fragments)
}

// verify is used during development to confirm convergence.
func verify(c *core.Client, s *core.Server) bool {
	return c.ServerState().Equal(s.Terminal().Framebuffer())
}
