// Roaming: the paper's design goal 4 — a client hops between networks
// (WiFi → cellular), changing its address mid-session, and the connection
// survives without either side timing out or reconnecting. The server
// simply re-targets its replies at the newest authentic source address.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

func main() {
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LinkParams{Delay: 40 * time.Millisecond}, 9)
	key, _ := sspcrypto.NewRandomKey()

	wifi := netem.Addr{Host: 0x0a000001, Port: 4242}     // the coffee shop
	cellular := netem.Addr{Host: 0x65000001, Port: 9999} // the train home
	serverAddr := netem.Addr{Host: 2, Port: 60001}
	current := wifi

	shell := host.NewShell(3)
	// Host responses are serialized: batched keystrokes must echo in
	// input order even when their simulated processing delays differ.
	var lastRespAt time.Time
	var server *core.Server
	var client *core.Client
	var wakeServer, wakeClient func()

	server, _ = core.NewServer(core.ServerConfig{
		Key: key, Clock: sched,
		Emit: func(wire []byte) {
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: wire})
			}
		},
		HostInput: func(data []byte) {
			out, delay := shell.Input(data)
			if len(out) > 0 {
				at := sched.Now().Add(delay)
				if at.Before(lastRespAt) {
					at = lastRespAt
				}
				lastRespAt = at
				sched.At(at, func() { server.HostOutput(out); wakeServer() })
			}
		},
	})
	client, _ = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched, Predictions: overlay.Adaptive,
		Emit: func(wire []byte) {
			path.Up.Send(netem.Packet{Src: current, Dst: serverAddr, Payload: wire})
		},
	})
	wakeClient = core.Pump(sched, client)
	wakeServer = core.Pump(sched, server)

	receive := func(p netem.Packet) { client.Receive(p.Payload, p.Src); wakeClient() }
	nw.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src); wakeServer() })
	nw.Attach(wifi, receive)

	server.HostOutput(shell.Start())
	sched.RunFor(time.Second)

	typeString := func(s string) {
		for _, r := range s {
			client.TypeRune(r)
			wakeClient()
			sched.RunFor(120 * time.Millisecond)
		}
	}

	typeString("typed-on-wifi ")
	fmt.Printf("on wifi     %v: screen=%q\n", wifi, row0(client))

	// The laptop sleeps, the user boards a train, the client wakes up
	// with a brand-new address. It does not know (or care) that its
	// public IP changed — it just keeps sending.
	nw.Detach(wifi)
	current = cellular
	nw.Attach(cellular, receive)
	fmt.Printf("\n*** roamed to %v (no reconnection, same session) ***\n\n", cellular)

	typeString("typed-on-lte")
	sched.RunFor(2 * time.Second)
	fmt.Printf("on cellular %v: screen=%q\n", cellular, row0(client))
	fmt.Printf("\nserver observed %d address change(s); reply target is now %v\n",
		server.Transport().Connection().RemoteAddrChanges(),
		mustAddr(server))
	if !client.ServerState().Equal(server.Terminal().Framebuffer()) {
		fmt.Println("ERROR: screens diverged")
		return
	}
	fmt.Println("client and server screens are byte-identical — session survived the roam")
}

func row0(c *core.Client) string {
	return strings.TrimRight(c.Display().Text(0), " ")
}

func mustAddr(s *core.Server) netem.Addr {
	a, _ := s.Transport().Connection().RemoteAddr()
	return a
}
