// Editor session: speculative local echo inside a full-screen, raw-mode
// application — the case the paper stresses that LINEMODE-style local
// editing could never handle (§5). The editor does its own echoing on the
// server; the client predicts it anyway, underlining unconfirmed
// predictions on this high-latency path, and repairs the one it gets
// wrong.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/terminal"
)

func main() {
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	nw := netem.NewNetwork(sched)
	// A trans-continental path: 300 ms RTT.
	path := netem.NewPath(nw, netem.LinkParams{Delay: 150 * time.Millisecond}, 5)
	key, _ := sspcrypto.NewRandomKey()
	clientAddr := netem.Addr{Host: 1, Port: 1000}
	serverAddr := netem.Addr{Host: 2, Port: 60001}

	editor := host.NewEditor(11, 80)
	// Host responses are serialized: batched keystrokes must echo in
	// input order even when their simulated processing delays differ.
	var lastRespAt time.Time
	var server *core.Server
	var client *core.Client
	var wakeServer, wakeClient func()

	server, _ = core.NewServer(core.ServerConfig{
		Key: key, Clock: sched,
		Emit: func(wire []byte) {
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: wire})
			}
		},
		HostInput: func(data []byte) {
			out, delay := editor.Input(data)
			if len(out) > 0 {
				at := sched.Now().Add(delay)
				if at.Before(lastRespAt) {
					at = lastRespAt
				}
				lastRespAt = at
				sched.At(at, func() { server.HostOutput(out); wakeServer() })
			}
		},
	})
	client, _ = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched, Predictions: overlay.Adaptive,
		Emit: func(wire []byte) {
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: wire})
		},
	})
	wakeClient = core.Pump(sched, client)
	wakeServer = core.Pump(sched, server)
	nw.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src); wakeServer() })
	nw.Attach(clientAddr, func(p netem.Packet) { client.Receive(p.Payload, p.Src); wakeClient() })

	// The editor paints its screen (raw mode, own echo discipline).
	server.HostOutput(editor.Start())
	sched.RunFor(2 * time.Second)

	fmt.Println("editing over a 300ms-RTT path; editor echoes server-side (raw mode):")

	// Warm up the prediction epoch, then type a sentence.
	for _, r := range "The " {
		client.TypeRune(r)
		wakeClient()
		sched.RunFor(160 * time.Millisecond)
	}
	sched.RunFor(time.Second)

	sentence := "quick brown fox"
	var instantly int
	for _, r := range sentence {
		seq := client.TypeRune(r)
		wakeClient()
		sched.RunFor(2 * time.Millisecond)
		// Is the character already visible (speculatively)?
		visible := strings.Contains(client.Display().Text(11)+client.Display().Text(12), string(r))
		_ = seq
		if visible {
			instantly++
		}
		sched.RunFor(158 * time.Millisecond)
	}
	fmt.Printf("  %d/%d characters appeared within 2ms of the keystroke (RTT is 300ms)\n",
		instantly, len(sentence))

	// Underlines mark unconfirmed predictions on slow paths (§3).
	client.TypeRune('!')
	wakeClient()
	sched.RunFor(2 * time.Millisecond)
	d := client.Display()
	underlined := false
	for col := 0; col < d.W; col++ {
		for row := 10; row < 14; row++ {
			c := d.Cell(row, col)
			if c.ContentsString() == "!" && c.Rend.Underline {
				underlined = true
			}
		}
	}
	fmt.Printf("  the newest unconfirmed prediction is underlined: %v\n", underlined)

	sched.RunFor(2 * time.Second)
	// After confirmation the underline is gone (it trails behind the
	// cursor and disappears as responses arrive, per §3).
	d = client.Display()
	still := false
	for col := 0; col < d.W; col++ {
		for row := 10; row < 14; row++ {
			c := d.Cell(row, col)
			if c.ContentsString() == "!" && c.Rend.Underline {
				still = true
			}
		}
	}
	fmt.Printf("  after one round trip the underline has disappeared: %v\n", !still)

	// Full-screen state stays in lockstep.
	if client.ServerState().Equal(server.Terminal().Framebuffer()) {
		fmt.Println("  client and server screens identical after the session")
	}
	show(client.Display())
	st := client.Predictions().Stats()
	fmt.Printf("engine: %d predicted, %d instant, %d correct, %d wrong (repaired)\n",
		st.Predicted, st.ShownImmediately, st.Correct, st.Incorrect)
}

func show(d *terminal.Framebuffer) {
	fmt.Println("  ┌" + strings.Repeat("─", 40) + "┐")
	for i := 10; i < 14; i++ {
		row := d.Text(i)
		if len(row) > 40 {
			row = row[:40]
		}
		fmt.Printf("  │%-40s│\n", strings.TrimRight(row, " "))
	}
	fmt.Println("  └" + strings.Repeat("─", 40) + "┘")
}
