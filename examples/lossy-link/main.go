// Lossy link: SSP versus TCP at 50% round-trip packet loss — the paper's
// netem experiment (§4), live. TCP (carrying an SSH-style byte stream)
// stalls in loss-induced exponential backoff; SSP's datagrams are
// idempotent state diffs, so it just keeps sending the newest state and
// converges as soon as any datagram gets through.
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/trace"
)

func main() {
	fmt.Println("replaying the same 200-keystroke session over a 100ms-RTT path")
	fmt.Println("with 29% packet loss in each direction (≈50% round-trip loss):")
	fmt.Println()

	tr := trace.Generate(77, trace.SixProfiles()[0], 200)
	params := netem.LossyNetem()

	ssh := bench.RunSSHTrace(tr, params, 7, bench.SSHOptions{})
	sshStats := bench.Summarize(ssh)

	mosh := bench.RunMoshTrace(tr, params, 7, bench.MoshOptions{Predictions: overlay.Never})
	moshStats := bench.Summarize(mosh.Samples)

	fmt.Println(bench.TableHeader("keystroke response time (predictions disabled, pure SSP vs TCP)"))
	fmt.Println(bench.TableRow("SSH (TCP)", sshStats))
	fmt.Println(bench.TableRow("Mosh (SSP)", moshStats))
	fmt.Println()

	fmt.Printf("TCP's worst keystroke waited %v; SSP's worst %v\n",
		bench.Percentile(ssh, 100).Round(10*time.Millisecond),
		bench.Percentile(mosh.Samples, 100).Round(10*time.Millisecond))
	fmt.Println()
	fmt.Println("paper's result for this experiment:")
	fmt.Println("  SSH    median 0.416 s   mean 16.8 s   σ 52.2 s")
	fmt.Println("  Mosh   median 0.222 s   mean 0.329 s  σ 1.63 s")
	fmt.Println()
	fmt.Println("the shape to check: TCP's mean and σ explode (rare multi-minute")
	fmt.Println("backoff stalls); SSP's distribution stays tight and bounded.")
}
