// Command mosh-client is the client side of a real (UDP) Mosh session:
// it reads keystrokes from stdin, runs them through the speculative-echo
// engine, and paints the synchronized remote screen to stdout using the
// same minimal-diff renderer the protocol uses on the wire.
//
// Usage (after starting mosh-server):
//
//	mosh-client -to 127.0.0.1:60001 -key <key> -session <id>
//
// -key and -session come from the server's "MOSH CONNECT port key id"
// line; -session selects this session on the server's multiplexed socket
// (its daemon runs many sessions behind one UDP port).
//
// stdin is consumed unbuffered when the terminal allows it; under a
// line-buffered terminal, whole lines are sent at once (the protocol and
// prediction layers behave identically either way).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/terminal"
)

func main() {
	to := flag.String("to", "127.0.0.1:60001", "server host:port")
	keyStr := flag.String("key", "", "session key printed by mosh-server")
	session := flag.Uint64("session", 0, "session id printed by mosh-server (0 = plain single-session wire format)")
	predict := flag.String("predict", "adaptive", "speculative echo: adaptive|always|never")
	flag.Parse()

	if *keyStr == "" {
		log.Fatal("missing -key (printed by mosh-server)")
	}
	if *session == 0 {
		// The bundled mosh-server always multiplexes; plain-format packets
		// are dropped by its envelope demux with no diagnostic, so make
		// the likely mistake loud.
		fmt.Fprintln(os.Stderr, "warning: -session 0 speaks the plain single-session wire format; "+
			"the bundled mosh-server requires the session id from its MOSH CONNECT line")
	}
	key, err := sspcrypto.KeyFromBase64(*keyStr)
	if err != nil {
		log.Fatal(err)
	}
	raddr, err := net.ResolveUDPAddr("udp", *to)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		log.Fatal(err)
	}

	pref := overlay.Adaptive
	switch *predict {
	case "always":
		pref = overlay.Always
	case "never":
		pref = overlay.Never
	}

	var (
		mu     sync.Mutex
		client *core.Client
		shown  *terminal.Framebuffer
	)
	var env *network.Envelope
	if *session != 0 {
		env = &network.Envelope{ID: *session}
	}
	client, err = core.NewClient(core.ClientConfig{
		Key:         key,
		Clock:       simclock.Real{},
		Predictions: pref,
		Envelope:    env,
		// conn.Write hands the datagram to the kernel before returning,
		// so wire buffers are recycled.
		RecycleWire: true,
		Emit: func(wire []byte) {
			conn.Write(wire)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	repaint := func() {
		d := client.Display()
		if shown == nil {
			os.Stdout.Write(terminal.NewFrame(false, nil, d))
		} else if !shown.Equal(d) {
			os.Stdout.Write(terminal.NewFrame(true, shown, d))
		} else {
			return
		}
		shown = d
	}

	// Network receive loop.
	go func() {
		buf := make([]byte, 2048)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "read:", err)
				return
			}
			mu.Lock()
			client.Receive(append([]byte(nil), buf[:n]...), netem.Addr{})
			repaint()
			mu.Unlock()
		}
	}()

	// Timer loop.
	go func() {
		for {
			mu.Lock()
			client.Tick()
			wait := client.WaitTime()
			repaint()
			mu.Unlock()
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			time.Sleep(wait)
		}
	}()

	// Keyboard loop: bytes from stdin become user events.
	in := bufio.NewReader(os.Stdin)
	for {
		b, err := in.ReadByte()
		if err != nil {
			return
		}
		if b == '\n' {
			b = '\r' // terminals send CR for the return key
		}
		mu.Lock()
		client.UserBytes([]byte{b})
		repaint()
		mu.Unlock()
	}
}
