// Command mosh-server is the server side of real (UDP) Mosh sessions. It
// runs on internal/sessiond: one daemon, one UDP socket, up to -sessions
// concurrent users demultiplexed by the cleartext session-ID envelope. At
// startup it issues every session slot and prints one bootstrap line per
// slot (the paper's SSH-launched script would carry these to the clients):
//
//	MOSH CONNECT <port> <key> <session-id>
//
// Each serves a built-in demo application; a production deployment would
// attach ptys instead — the session, terminal and protocol layers are
// identical.
//
// Usage:
//
//	mosh-server [-port 60001] [-sessions 64] [-demo shell|editor|mail]
//	            [-idle 12h] [-debug 127.0.0.1:6060]
//	            [-state-dir /var/lib/moshd] [-journal 10s]
//
// Then, per printed line: mosh-client -to <host>:<port> -key <key> -session <id>
//
// -debug serves the daemon's expvar metrics (sessions live, packets and
// bytes in/out, evictions, dispatch-queue depth) at /debug/vars.
//
// -state-dir enables crash-safe session resumption: the daemon journals
// every session's durable core there (periodically, per -journal, and on
// SIGINT/SIGTERM), and on start restores journaled sessions, printing one
// "MOSH RESUME <port> <key> <id>" line per revived session. Clients keep
// their existing key and session ID; their next datagram authenticates and
// the daemon fast-forwards them with a fresh full-screen diff — a restart
// is just another form of packet loss.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/sessiond"
	"repro/internal/simclock"
)

func main() {
	port := flag.Int("port", 60001, "UDP port to listen on")
	sessions := flag.Int("sessions", 64, "session capacity (all issued at startup)")
	demo := flag.String("demo", "shell", "demo application: shell|editor|mail")
	idle := flag.Duration("idle", sessiond.DefaultIdleTimeout, "evict sessions idle this long (0 or negative = never)")
	debug := flag.String("debug", "", "serve expvar metrics on this address (e.g. 127.0.0.1:6060)")
	stateDir := flag.String("state-dir", "", "journal sessions here and restore them on start (crash-safe resumption)")
	journal := flag.Duration("journal", sessiond.DefaultJournalInterval, "journal flush cadence with -state-dir")
	flag.Parse()

	conn, err := net.ListenUDP("udp", &net.UDPAddr{Port: *port})
	if err != nil {
		log.Fatal(err)
	}

	newApp := func(id uint64) host.App {
		seed := time.Now().UnixNano() + int64(id)
		switch *demo {
		case "editor":
			return host.NewEditor(seed, 80)
		case "mail":
			return host.NewMailReader(seed)
		default:
			return host.NewShell(seed)
		}
	}

	if *idle == 0 {
		// The daemon treats 0 as "use the default"; at the flag surface a
		// plain reading of -idle 0 is "never evict".
		*idle = -1
	}
	d, err := sessiond.New(sessiond.Config{
		Clock:       simclock.Real{},
		NewApp:      newApp,
		Capacity:    *sessions,
		IdleTimeout: *idle,
		// The socket adapter's WriteTo copies into the kernel before
		// returning, so per-session wire buffers are recycled.
		RecycleWire:     true,
		StateDir:        *stateDir,
		JournalInterval: *journal,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sessions restored from the journal keep their keys and IDs; their
	// clients resume without re-bootstrapping. Newly issued slots fill the
	// remaining capacity.
	restored := d.Metrics().SessionsRestored.Value()
	if restored > 0 {
		for _, s := range d.Sessions() {
			fmt.Printf("MOSH RESUME %d %s %d\n", *port, s.Key().Base64(), s.ID)
		}
	}
	for i := int64(0); i < int64(*sessions)-restored; i++ {
		s, err := d.OpenSession()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MOSH CONNECT %d %s %d\n", *port, s.Key().Base64(), s.ID)
	}

	// A clean shutdown flushes the journal so every session survives the
	// next start; the kill--9 case is what the reservation ceilings and
	// the periodic flush protect.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		// Close flushes the journal and unblocks Serve's read, which then
		// returns nil for a clean exit.
		d.Close()
	}()

	if *debug != "" {
		// Counters plus resident screen-state gauges (interned graphemes,
		// pooled rows, shared scrollback rows): memory-per-session is
		// observable at /debug/vars under load.
		d.PublishExpvar("sessiond")
		go func() {
			// expvar auto-registers /debug/vars on the default mux.
			log.Println(http.ListenAndServe(*debug, nil))
		}()
	}

	if err := d.Serve(newUDPAdapter(conn)); err != nil {
		log.Fatal(err)
	}
}

// udpAdapter bridges *net.UDPConn to sessiond.PacketConn. The stack tracks
// peers as netem.Addr (a 32-bit host plus port); the adapter remembers the
// real UDP address behind each compressed one so replies — including
// post-roam replies — reach the true socket address. Only IPv4 sources are
// accepted: the (host, port) → netem.Addr mapping is then injective, so
// this pre-authentication table cannot be poisoned to redirect another
// peer's replies (a spoofed datagram from a victim's own address writes
// the identical entry). IPv6 needs a wider address type in internal/netem
// first (ROADMAP).
type udpAdapter struct {
	conn *net.UDPConn
	mu   sync.RWMutex
	real map[netem.Addr]*net.UDPAddr
}

func newUDPAdapter(conn *net.UDPConn) *udpAdapter {
	return &udpAdapter{conn: conn, real: make(map[netem.Addr]*net.UDPAddr)}
}

// maxAddrCache bounds the compressed→real address map. Entries are written
// before any authentication runs, so a spoofed-source flood could otherwise
// grow it without limit. On overflow the cache resets; live peers re-teach
// their entry with their next datagram (at worst one heartbeat interval of
// undeliverable replies).
const maxAddrCache = 1 << 16

func (u *udpAdapter) ReadFrom(buf []byte) (int, netem.Addr, error) {
	for {
		n, src, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			// One client's ICMP port-unreachable (or similar transient
			// error) must not tear down every other session on the
			// socket; only a closed socket ends the daemon.
			if errors.Is(err, net.ErrClosed) {
				return 0, netem.Addr{}, err
			}
			fmt.Fprintln(os.Stderr, "read:", err)
			continue
		}
		a, ok := compressUDPAddr(src)
		if !ok {
			continue // non-IPv4 source: unsupported, see type comment
		}
		// Steady state is all read-locks: the entry only changes when a
		// peer is new or roamed, so the reader does not serialize the
		// session workers' concurrent WriteTo calls on the write lock.
		u.mu.RLock()
		known := u.real[a]
		u.mu.RUnlock()
		if known == nil || !known.IP.Equal(src.IP) || known.Port != src.Port {
			u.mu.Lock()
			if len(u.real) >= maxAddrCache {
				u.real = make(map[netem.Addr]*net.UDPAddr, 1024)
			}
			u.real[a] = src
			u.mu.Unlock()
		}
		return n, a, nil
	}
}

// Close unblocks ReadFrom so sessiond.Daemon.Close can end Serve.
func (u *udpAdapter) Close() error { return u.conn.Close() }

func (u *udpAdapter) WriteTo(wire []byte, dst netem.Addr) error {
	u.mu.RLock()
	real := u.real[dst]
	u.mu.RUnlock()
	if real == nil {
		return nil // never heard from this address; nothing to reply to
	}
	_, err := u.conn.WriteToUDP(wire, real)
	return err
}

// compressUDPAddr maps an IPv4 UDP source into the emulated-address form
// the datagram layer tracks roaming with; the mapping is injective. Non-
// IPv4 sources report ok=false.
func compressUDPAddr(a *net.UDPAddr) (netem.Addr, bool) {
	ip4 := a.IP.To4()
	if ip4 == nil {
		return netem.Addr{}, false
	}
	hostBits := uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
	return netem.Addr{Host: hostBits, Port: uint16(a.Port)}, true
}
