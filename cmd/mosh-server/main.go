// Command mosh-server is the server side of a real (UDP) Mosh session. It
// binds a high UDP port, prints the session key for out-of-band bootstrap
// (MOSH CONNECT port key — the paper's SSH-launched script would carry
// this to the client), and serves a built-in demo shell. A production
// deployment would attach a pty instead of the demo application; the
// session, terminal and protocol layers are identical.
//
// Usage:
//
//	mosh-server [-port 60001] [-demo shell|editor|mail]
//
// Then run: mosh-client -to <host>:<port> -key <key>
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

func main() {
	port := flag.Int("port", 60001, "UDP port to listen on")
	demo := flag.String("demo", "shell", "demo application: shell|editor|mail")
	flag.Parse()

	key, err := sspcrypto.NewRandomKey()
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{Port: *port})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MOSH CONNECT %d %s\n", *port, key.Base64())

	var app host.App
	switch *demo {
	case "editor":
		app = host.NewEditor(time.Now().UnixNano(), 80)
	case "mail":
		app = host.NewMailReader(time.Now().UnixNano())
	default:
		app = host.NewShell(time.Now().UnixNano())
	}

	var (
		mu         sync.Mutex
		server     *core.Server
		clientAddr *net.UDPAddr
	)

	server, err = core.NewServer(core.ServerConfig{
		Key:   key,
		Clock: simclock.Real{},
		Emit: func(wire []byte) {
			if clientAddr != nil {
				conn.WriteToUDP(wire, clientAddr)
			}
		},
		HostInput: func(data []byte) {
			out, delay := app.Input(data)
			if len(out) > 0 {
				go func() {
					time.Sleep(delay)
					mu.Lock()
					server.HostOutput(out)
					mu.Unlock()
				}()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	server.HostOutput(app.Start())
	mu.Unlock()

	// Timer-driven ticks.
	go func() {
		for {
			mu.Lock()
			server.Tick()
			wait := server.WaitTime()
			mu.Unlock()
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			time.Sleep(wait)
		}
	}()

	buf := make([]byte, 2048)
	for {
		n, src, err := conn.ReadFromUDP(buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "read:", err)
			continue
		}
		wire := append([]byte(nil), buf[:n]...)
		mu.Lock()
		// The datagram layer owns roaming; we mirror its reply target to
		// a real socket address.
		if err := server.Receive(wire, udpToAddr(src)); err == nil {
			clientAddr = src
		}
		mu.Unlock()
	}
}

// udpToAddr compresses a UDP source into the emulated-address form the
// datagram layer tracks roaming with.
func udpToAddr(a *net.UDPAddr) netem.Addr {
	ip := a.IP.To4()
	var host uint32
	if ip != nil {
		host = uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
	}
	return netem.Addr{Host: host, Port: uint16(a.Port)}
}
