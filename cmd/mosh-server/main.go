// Command mosh-server is the server side of real (UDP) Mosh sessions. It
// runs on internal/sessiond: one daemon, one UDP socket, up to -sessions
// concurrent users demultiplexed by the cleartext session-ID envelope. At
// startup it issues every session slot and prints one bootstrap line per
// slot (the paper's SSH-launched script would carry these to the clients):
//
//	MOSH CONNECT <port> <key> <session-id>
//
// Each serves a built-in demo application; a production deployment would
// attach ptys instead — the session, terminal and protocol layers are
// identical.
//
// Usage:
//
//	mosh-server [-port 60001] [-sessions 64] [-demo shell|editor|mail]
//	            [-idle 12h] [-debug 127.0.0.1:6060] [-batchio=false]
//	            [-state-dir /var/lib/moshd] [-journal 10s]
//	            [-journal-full-rewrite] [-no-row-intern]
//	            [-unauth-burst 64] [-unauth-rate 16]
//
// Then, per printed line: mosh-client -to <host>:<port> -key <key> -session <id>
//
// The daemon serves its socket through the batched datagram pipeline
// (internal/udpbatch): recvmmsg/sendmmsg on Linux move whole batches of
// datagrams per syscall; -batchio=false forces the portable
// one-datagram-per-syscall loop instead.
//
// -debug serves the daemon's observability surface: expvar metrics at
// /debug/vars (counters, screen-state gauges, live transport introspection,
// keystroke→echo percentiles, per-stage pipeline latency), the same data as
// Prometheus text exposition at /metrics, and the Go runtime profiler at
// /debug/pprof/. SIGQUIT dumps the in-memory flight recorder (the last few
// thousand pipeline events) to stderr instead of the Go runtime's stack
// dump; degradation trips (load shedding, journal suspension, unauth-quota
// blocks) dump it automatically. See README's "Observability".
//
// -state-dir enables crash-safe session resumption: the daemon journals
// every session's durable core there (periodically, per -journal, and on
// SIGINT/SIGTERM), and on start restores journaled sessions, printing one
// "MOSH RESUME <port> <key> <id>" line per revived session. Clients keep
// their existing key and session ID; their next datagram authenticates and
// the daemon fast-forwards them with a fresh full-screen diff — a restart
// is just another form of packet loss.
//
// -unauth-burst/-unauth-rate tune the per-source quota on auth-failing
// datagrams: spoofed-envelope floods are refused before the AEAD runs once
// a source exhausts its burst, and any authentic datagram clears its
// source's record (a roaming client can never lock itself out). See
// README's "Fault tolerance & graceful degradation".
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug listener's default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/host"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/udpbatch"
)

func main() {
	port := flag.Int("port", 60001, "UDP port to listen on")
	sessions := flag.Int("sessions", 64, "session capacity (all issued at startup)")
	demo := flag.String("demo", "shell", "demo application: shell|editor|mail")
	idle := flag.Duration("idle", sessiond.DefaultIdleTimeout, "evict sessions idle this long (0 or negative = never)")
	debug := flag.String("debug", "", "serve expvar metrics on this address (e.g. 127.0.0.1:6060)")
	stateDir := flag.String("state-dir", "", "journal sessions here and restore them on start (crash-safe resumption)")
	journal := flag.Duration("journal", sessiond.DefaultJournalInterval, "journal flush cadence with -state-dir")
	batchio := flag.Bool("batchio", true, "vectorized socket I/O (recvmmsg/sendmmsg) when the platform supports it; false forces the one-datagram-per-syscall loop")
	udpProvider := flag.String("udp-provider", "auto", "batch I/O provider: auto|uring|gso|mmsg|loop; auto probes the kernel and walks the ladder io_uring → GSO/GRO → mmsg → loop, an explicit name fails at startup if unsupported rather than silently falling back")
	quotaBurst := flag.Int("unauth-burst", sessiond.DefaultUnauthQuotaBurst, "auth-failing datagrams a single source may charge before being quota-dropped without AEAD cost (negative disables the quota)")
	quotaRate := flag.Float64("unauth-rate", sessiond.DefaultUnauthQuotaRate, "per-source refill rate (auth failures/sec) for the unauth quota")
	fullRewrite := flag.Bool("journal-full-rewrite", false, "with -state-dir, rewrite the whole checkpoint on every flush instead of appending incremental segments (the pre-log-structured baseline; diagnostic)")
	noRowIntern := flag.Bool("no-row-intern", false, "disable row-level screen interning across sessions (diagnostic; raises resident_bytes_per_session)")
	flag.Parse()

	conn, err := net.ListenUDP("udp", &net.UDPAddr{Port: *port})
	if err != nil {
		log.Fatal(err)
	}

	newApp := func(id uint64) host.App {
		seed := time.Now().UnixNano() + int64(id)
		switch *demo {
		case "editor":
			return host.NewEditor(seed, 80)
		case "mail":
			return host.NewMailReader(seed)
		default:
			return host.NewShell(seed)
		}
	}

	if *idle == 0 {
		// The daemon treats 0 as "use the default"; at the flag surface a
		// plain reading of -idle 0 is "never evict".
		*idle = -1
	}
	d, err := sessiond.New(sessiond.Config{
		Clock:       simclock.Real{},
		NewApp:      newApp,
		Capacity:    *sessions,
		IdleTimeout: *idle,
		// Egress hands datagrams to the kernel before recycling, so
		// per-session wire buffers are reused (the ring owns pooled copies).
		RecycleWire:        true,
		StateDir:           *stateDir,
		JournalInterval:    *journal,
		JournalFullRewrite: *fullRewrite,
		DisableRowIntern:   *noRowIntern,
		UnauthQuotaBurst:   *quotaBurst,
		UnauthQuotaRate:    *quotaRate,
		// Degradation trips ship their own forensics: the flight-recorder
		// dump holds the events that led to the trip (rate-limited to one
		// dump per reason per 10 s inside the daemon).
		OnDegrade: func(reason string, dump []byte) {
			fmt.Fprintf(os.Stderr, "--- degradation trip (%s) ---\n%s", reason, dump)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sessions restored from the journal keep their keys and IDs; their
	// clients resume without re-bootstrapping. Newly issued slots fill the
	// remaining capacity.
	restored := d.Metrics().SessionsRestored.Value()
	if restored > 0 {
		for _, s := range d.Sessions() {
			fmt.Printf("MOSH RESUME %d %s %d\n", *port, s.Key().Base64(), s.ID)
		}
	}
	for i := int64(0); i < int64(*sessions)-restored; i++ {
		s, err := d.OpenSession()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MOSH CONNECT %d %s %d\n", *port, s.Key().Base64(), s.ID)
	}

	// A clean shutdown flushes the journal so every session survives the
	// next start; the kill--9 case is what the reservation ceilings and
	// the periodic flush protect.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		// Close flushes the journal and unblocks Serve's read, which then
		// returns nil for a clean exit.
		d.Close()
	}()

	// SIGQUIT dumps the flight recorder to stderr and keeps serving.
	// Catching it replaces the Go runtime's default goroutine-stack dump —
	// for that, use /debug/pprof/goroutine on the -debug listener.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			os.Stderr.Write(d.FlightDump("SIGQUIT"))
		}
	}()

	if *debug != "" {
		// Counters plus resident screen-state gauges (interned graphemes,
		// pooled rows, shared scrollback rows), live transport introspection
		// (SRTT / frame-interval quantiles), keystroke→echo percentiles,
		// and per-stage pipeline latency: the whole surface at /debug/vars,
		// mirrored as Prometheus text exposition at /metrics. The pprof
		// import above registers /debug/pprof on the same mux.
		d.PublishExpvar("sessiond")
		http.Handle("/metrics", d.MetricsHandler())
		go func() {
			// expvar auto-registers /debug/vars on the default mux.
			log.Println(http.ListenAndServe(*debug, nil))
		}()
	}

	// The batch connection handles address translation itself: netem.Addr
	// is a bijective compression of the socket address — (IPv4, port)
	// packed directly, native IPv6 carried by value — so replies,
	// including post-roam replies, decompress straight back into socket
	// addresses with no pre-authentication side table to poison.
	var bc udpbatch.Conn
	if !*batchio {
		bc = udpbatch.NewUDPLoopConn(conn)
	} else {
		var err error
		bc, err = udpbatch.NewUDPConnProvider(conn, *udpProvider)
		if err != nil {
			log.Fatalf("udp-provider %q: %v", *udpProvider, err)
		}
	}
	log.Printf("udp batch provider: %s", udpbatch.ProviderName(bc))
	if err := d.ServeBatch(bc); err != nil {
		log.Fatal(err)
	}
}
