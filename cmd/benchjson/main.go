// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so CI can publish a BENCH_<sha>.json artifact
// per commit and the performance trajectory (snapshot/diff costs, the
// many-session daemon numbers) is recorded rather than scrolled away.
//
// Usage:
//
//	go test -run XXX_NONE -bench . -benchtime 1x ./... | benchjson -sha "$GITHUB_SHA" > BENCH_$GITHUB_SHA.json
//
// Every benchmark line becomes one record with its primary ns/op plus any
// extra `value unit` metric pairs (B/op, allocs/op, custom ReportMetric
// units). Non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark result.
type Record struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the artifact schema.
type Document struct {
	SHA        string   `json:"sha,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CreatedAt  string   `json:"created_at"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit SHA recorded in the artifact")
	flag.Parse()

	doc := Document{
		SHA:       *sha,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}

	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if rec, ok := parseBenchLine(line); ok {
			rec.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine handles "BenchmarkName-8  10  123 ns/op  4 B/op  1 allocs/op
// 56.0 custom/op" lines, tolerating any number of metric pairs.
func parseBenchLine(line string) (Record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}
