// Command mosh-bench regenerates the paper's evaluation (§4): every table
// and figure, replayed in deterministic virtual time over the emulated
// networks. Run it with no flags for the full set, or select one
// experiment:
//
//	mosh-bench -exp fig2       # Figure 2: EV-DO keystroke latency CDF
//	mosh-bench -exp fig3       # Figure 3: collection-interval sweep
//	mosh-bench -exp lte        # Verizon LTE + concurrent download table
//	mosh-bench -exp singapore  # MIT–Singapore wired path table
//	mosh-bench -exp loss       # 29%-loss netem table (predictions off)
//	mosh-bench -exp ablations  # design-choice ablations
//	mosh-bench -exp manysession -sessions 1000
//	                           # sessiond scaling: N sessions, one socket
//	mosh-bench -exp manysession -sessions 999 -mixed
//	                           # heterogeneous cohorts: shell / CJK editor /
//	                           # deep-scrollback log tail
//	mosh-bench -exp manysession -sessions 500 -mixed -restart -roam -lossy
//	                           # torture mode: daemon killed and restored
//	                           # from its journal mid-run (resumption
//	                           # latency percentiles), a third of clients
//	                           # roaming, lossy non-shell cohorts
//	mosh-bench -exp manysession -sessions 1000 -unbatched
//	                           # one-syscall-per-datagram baseline; compare
//	                           # its "socket io" line against the default
//	                           # batched pipeline's
//	mosh-bench -exp chaos -sessions 200
//	                           # hostile-world smoke: mixed cohorts under a
//	                           # seeded fault schedule (wire drop/dup/
//	                           # corrupt/truncate, journal disk faults,
//	                           # mid-run restart, roam, loss) with a nonce
//	                           # audit; exits nonzero on a broken invariant
//	mosh-bench -exp journal -sessions 10000 -virtual
//	                           # incremental-journaling gate: N sessions,
//	                           # ~1% dirty per flush interval, incremental
//	                           # arm vs full-rewrite baseline; exits
//	                           # nonzero unless the incremental arm saves
//	                           # >= 10x flush bytes with write amp <= 2
//
// -keys N sets the keystrokes per user (default: the paper-scale 1664,
// ≈10k total across six users).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig2|fig3|lte|singapore|loss|ablations|manysession|chaos|journal|all")
	keys := flag.Int("keys", 1664, "keystrokes per user (6 users)")
	seed := flag.Int64("seed", 1, "workload seed")
	sessions := flag.Int("sessions", 1000, "concurrent sessions for -exp manysession")
	mixed := flag.Bool("mixed", false, "mixed cohorts for -exp manysession: shell (latency-measured) / CJK-emoji editor / deep-scrollback log tail")
	restart := flag.Bool("restart", false, "manysession: kill the daemon mid-run and restore it from its journal; report resumption latency percentiles")
	roam := flag.Bool("roam", false, "manysession: a third of the sessions change source address mid-run")
	lossy := flag.Bool("lossy", false, "manysession: per-cohort lossy links (editor 1%, log-tail 3%)")
	unbatched := flag.Bool("unbatched", false, "manysession: one-datagram-per-syscall fallback mode (the baseline the batched pipeline is measured against)")
	iomodel := flag.String("iomodel", "mmsg", "manysession: provider geometry the syscall/stack-traversal accounting mirrors: mmsg|loop|gso|uring")
	trains := flag.Bool("trains", false, "manysession: bulk-stream cohort with lockstep typing — every reply is a multi-fragment same-peer train, the workload GSO segmentation offload coalesces")
	chaos := flag.Bool("chaos", false, "manysession: seeded hostile-world schedule (wire mangling, journal disk faults, nonce audit); see also -exp chaos")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos schedule seed (0 = derived from -seed)")
	virtual := flag.Bool("virtual", false, "manysession: virtual-time regime tuned so the run completes faster than the span it simulates even at 100000 sessions (sparse keystrokes, stretched heartbeat); exits nonzero if wall time exceeds virtual time")
	flightDump := flag.String("flight-dump", "chaos-flight-dump.txt", "file to write the daemon's flight-recorder dump to when the chaos gate fails (empty disables)")
	flag.Parse()

	cfg := bench.Config{KeystrokesPerUser: *keys, Seed: *seed}

	run := func(name string, f func(bench.Config)) {
		if *exp == "all" || *exp == name {
			start := time.Now()
			f(cfg)
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	run("fig2", func(c bench.Config) {
		r := bench.Figure2(c)
		fmt.Println(bench.FormatComparison(r))
		fmt.Println(bench.FormatCDF(r))
		fmt.Printf("paper: Mosh median 5 ms / mean 173 ms, SSH median 503 ms / mean 515 ms, ~70%% instant, 0.9%% repaired\n")
	})
	run("fig3", func(c bench.Config) {
		pts := bench.Figure3(c)
		fmt.Println(bench.FormatSweep(pts))
		fmt.Printf("minimum at %v (paper: 8 ms)\n", bench.BestInterval(pts))
	})
	run("lte", func(c bench.Config) {
		fmt.Println(bench.FormatComparison(bench.TableLTE(c)))
		fmt.Printf("paper: SSH 5.36 s / 5.03 s / 2.14 s; Mosh <5 ms / 1.70 s / 2.60 s\n")
	})
	run("singapore", func(c bench.Config) {
		fmt.Println(bench.FormatComparison(bench.TableSingapore(c)))
		fmt.Printf("paper: SSH 273 ms / 272 ms / 9 ms; Mosh <5 ms / 86 ms / 132 ms\n")
	})
	run("loss", func(c bench.Config) {
		fmt.Println(bench.FormatComparison(bench.TableLoss(c)))
		fmt.Printf("paper: SSH 0.416 s / 16.8 s / 52.2 s; Mosh (no predictions) 0.222 s / 0.329 s / 1.63 s\n")
	})
	run("ablations", runAblations)
	// The many-session scaling run is explicit-only (not part of "all"):
	// 1000 full client stacks is a different cost class than the paper
	// reproduction.
	if *exp == "manysession" {
		start := time.Now()
		model, err := sessiond.ParseIOModel(*iomodel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res := bench.RunManySession(bench.ManySessionOptions{
			Sessions:     *sessions,
			Seed:         cfg.Seed,
			Mixed:        *mixed,
			Restart:      *restart,
			Roam:         *roam,
			LossyCohorts: *lossy,
			Unbatched:    *unbatched,
			IOModel:      model,
			Trains:       *trains,
			Chaos:        *chaos,
			ChaosSeed:    *chaosSeed,
			Virtual:      *virtual,
		})
		fmt.Println(bench.FormatManySession(res))
		fmt.Fprintf(os.Stderr, "[manysession done in %v]\n\n", time.Since(start).Round(time.Millisecond))
		if *virtual && res.Wall >= res.Elapsed {
			fmt.Fprintf(os.Stderr, "virtual-time FAILED: %v wall >= %v virtual (ratio %.2fx)\n",
				res.Wall.Round(time.Millisecond), res.Elapsed, res.Elapsed.Seconds()/res.Wall.Seconds())
			os.Exit(1)
		}
	}
	// The chaos smoke is the torture preset in one flag: mixed cohorts,
	// restart, roam, lossy links, and the full fault schedule.
	if *exp == "chaos" {
		start := time.Now()
		res := bench.RunManySession(bench.ManySessionOptions{
			Sessions:     *sessions,
			Seed:         cfg.Seed,
			Mixed:        true,
			Restart:      true,
			Roam:         true,
			LossyCohorts: true,
			Chaos:        true,
			ChaosSeed:    *chaosSeed,
		})
		fmt.Println(bench.FormatManySession(res))
		fmt.Fprintf(os.Stderr, "[chaos done in %v]\n\n", time.Since(start).Round(time.Millisecond))
		if res.NonceViolations != 0 || res.Restored != int64(res.Sessions) || res.Lost != 0 {
			fmt.Fprintf(os.Stderr, "chaos FAILED: nonce violations=%d restored=%d/%d lost=%d\n",
				res.NonceViolations, res.Restored, res.Sessions, res.Lost)
			// Ship the daemon's flight recorder with the failure: the last
			// few thousand pipeline events (drops, trips, journal faults)
			// are the forensics a red CI run needs.
			if *flightDump != "" && len(res.FlightDump) > 0 {
				if err := os.WriteFile(*flightDump, res.FlightDump, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "flight dump: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "flight recorder dump written to %s\n", *flightDump)
				}
			}
			os.Exit(1)
		}
	}
	// The incremental-journaling gate: both arms on the same fleet shape,
	// compared on steady-state flush bytes and write amplification.
	if *exp == "journal" {
		start := time.Now()
		inc := bench.RunJournalBench(bench.JournalBenchOptions{Sessions: *sessions, Seed: *seed})
		full := bench.RunJournalBench(bench.JournalBenchOptions{Sessions: *sessions, Seed: *seed, FullRewrite: true})
		fmt.Println(bench.FormatJournalBench(inc))
		fmt.Println(bench.FormatJournalBench(full))
		fmt.Fprintf(os.Stderr, "[journal done in %v]\n\n", time.Since(start).Round(time.Millisecond))
		ratio := full.BytesPerFlush / inc.BytesPerFlush
		fmt.Printf("incremental saves %.1fx flush bytes; journal_write_amp %.3f; journal_flush_p99_ms %.3f\n",
			ratio, inc.WriteAmp, float64(inc.FlushP99)/float64(time.Millisecond))
		if ratio < 10 || inc.WriteAmp > 2 {
			fmt.Fprintf(os.Stderr, "journal FAILED: ratio=%.1fx (want >=10) write_amp=%.3f (want <=2)\n", ratio, inc.WriteAmp)
			os.Exit(1)
		}
		if *virtual && inc.Wall >= inc.Elapsed {
			fmt.Fprintf(os.Stderr, "virtual-time FAILED: %v wall >= %v virtual\n",
				inc.Wall.Round(time.Millisecond), inc.Elapsed)
			os.Exit(1)
		}
	}
}

// runAblations sweeps the design choices DESIGN.md calls out.
func runAblations(cfg bench.Config) {
	small := cfg
	if small.KeystrokesPerUser > 400 {
		small.KeystrokesPerUser = 400
	}
	tr := trace.Generate(small.Seed+11, trace.SixProfiles()[4], small.KeystrokesPerUser)

	fmt.Println("Ablation: prediction display policy (EV-DO)")
	for _, p := range []struct {
		name string
		pref overlay.DisplayPreference
	}{{"adaptive", overlay.Adaptive}, {"always", overlay.Always}, {"never", overlay.Never}} {
		res := bench.RunMoshTrace(tr, netem.EVDO(), small.Seed, bench.MoshOptions{Predictions: p.pref})
		fmt.Println(bench.TableRow("mosh/"+p.name, bench.Summarize(res.Samples)))
	}
	fmt.Println()

	fmt.Println("Ablation: server-side echo ack timeout (EV-DO, adaptive)")
	for _, d := range []time.Duration{time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond} {
		res := bench.RunMoshTrace(tr, netem.EVDO(), small.Seed,
			bench.MoshOptions{Predictions: overlay.Adaptive, EchoAckTimeout: d})
		st := bench.Summarize(res.Samples)
		fmt.Printf("%s   mispredictions=%d\n", bench.TableRow(fmt.Sprintf("echo-ack %v", d), st), res.Mispredicted)
	}
	fmt.Println()

	fmt.Println("Ablation: SSP minimum RTO under 29% loss (predictions off)")
	for _, rto := range []time.Duration{50 * time.Millisecond, time.Second} {
		res := bench.RunMoshTrace(tr, netem.LossyNetem(), small.Seed,
			bench.MoshOptions{Predictions: overlay.Never, MinRTO: rto, MaxRTO: 4 * rto})
		fmt.Println(bench.TableRow(fmt.Sprintf("min-rto %v", rto), bench.Summarize(res.Samples)))
	}
	fmt.Println()

	fmt.Println("Ablation: frame-rate cap during a 10s terminal flood (LAN-fast path)")
	for _, min := range []time.Duration{20 * time.Millisecond, time.Millisecond} {
		timing := transport.DefaultTiming()
		timing.SendIntervalMin = min
		res := bench.RunFlood(10*time.Second, &timing, small.Seed)
		fmt.Printf("%-24s frames: %5d   wire packets: %5d   converged: %v\n",
			fmt.Sprintf("frame cap %v", min), res.Frames, res.WirePackets, res.Converged)
	}
	fmt.Println()

	fmt.Println("Ablation: delayed-ack interval (EV-DO, packets sent)")
	for _, d := range []time.Duration{time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		timing := transport.DefaultTiming()
		timing.AckDelay = d
		res := bench.RunMoshTrace(tr, netem.EVDO(), small.Seed,
			bench.MoshOptions{Predictions: overlay.Adaptive, Timing: &timing})
		fmt.Printf("%-24s wire packets: %d\n", fmt.Sprintf("ack delay %v", d), res.WirePackets)
	}
}
